package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cash/internal/cost"
)

func testOptions(t *testing.T) Options {
	t.Helper()
	dir := t.TempDir()
	return Options{
		Socket:  filepath.Join(dir, "cashd.sock"),
		Journal: filepath.Join(dir, "journal.jsonl"),
		Epoch:   time.Millisecond,
	}
}

// rawClient is a no-retry wire client for exercising the protocol
// directly (the retrying client has its own package and tests).
type rawClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	id   uint64
}

func dialRaw(t *testing.T, socket string) *rawClient {
	t.Helper()
	var conn net.Conn
	var err error
	for i := 0; i < 50; i++ {
		conn, err = net.DialTimeout("unix", socket, time.Second)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dialing %s: %v", socket, err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClient{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (c *rawClient) call(method, idem string, params any) Response {
	c.t.Helper()
	c.id++
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			c.t.Fatalf("marshal params: %v", err)
		}
		raw = b
	}
	c.conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(c.conn, Request{ID: c.id, Method: method, Idem: idem, Params: raw}); err != nil {
		c.t.Fatalf("write %s: %v", method, err)
	}
	for {
		var resp Response
		if err := ReadFrame(c.br, &resp); err != nil {
			c.t.Fatalf("read %s reply: %v", method, err)
		}
		if resp.ID == c.id && !resp.Event {
			return resp
		}
	}
}

func (c *rawClient) health() HealthResult {
	c.t.Helper()
	resp := c.call(MethodHealth, "", nil)
	if resp.Code != CodeOK {
		c.t.Fatalf("health: %s %s", resp.Code, resp.Error)
	}
	var h HealthResult
	if err := json.Unmarshal(resp.Result, &h); err != nil {
		c.t.Fatalf("health decode: %v", err)
	}
	return h
}

func (c *rawClient) waitLanded(target int) HealthResult {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := c.health()
		if h.CellsLanded >= target {
			return h
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("stalled at %d/%d cells landed", h.CellsLanded, target)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDaemonSubmitExecuteDrain(t *testing.T) {
	opts := testOptions(t)
	srv, err := Start(opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Kill()

	cl := dialRaw(t, opts.Socket)
	spec := TenantSpec{Name: "acme", Cells: 5, Seed: 42}
	resp := cl.call(MethodSubmit, "idem-1", spec)
	if resp.Code != CodeOK {
		t.Fatalf("submit: %s %s", resp.Code, resp.Error)
	}
	var ack SubmitResult
	if err := json.Unmarshal(resp.Result, &ack); err != nil {
		t.Fatalf("ack decode: %v", err)
	}
	if ack.Name != "acme" || ack.Cells != 5 || ack.Resubmitted {
		t.Fatalf("bad ack: %+v", ack)
	}
	if want := int64(ExpectedSpend(spec, cost.Model{})); ack.EstimateNanos != want {
		t.Fatalf("estimate %d, want %d", ack.EstimateNanos, want)
	}

	// Duplicate under the same key acks the original, applies nothing.
	resp = cl.call(MethodSubmit, "idem-1", spec)
	if resp.Code != CodeOK {
		t.Fatalf("duplicate submit: %s %s", resp.Code, resp.Error)
	}
	if err := json.Unmarshal(resp.Result, &ack); err != nil || !ack.Resubmitted {
		t.Fatalf("duplicate submit not deduped: %+v err=%v", ack, err)
	}

	h := cl.waitLanded(5)
	if h.Tenants != 1 || h.CellsTotal != 5 {
		t.Fatalf("health after dedup: %+v", h)
	}
	if want := int64(ExpectedSpend(spec, cost.Model{})); h.ConsumedNanos != want {
		t.Fatalf("consumed %d nanos, want %d", h.ConsumedNanos, want)
	}

	// Spend reconciles: granted = consumed + refunded, nothing open.
	resp = cl.call(MethodSpend, "", nil)
	var spend SpendResult
	if err := json.Unmarshal(resp.Result, &spend); err != nil {
		t.Fatalf("spend decode: %v", err)
	}
	if len(spend.Tenants) != 1 {
		t.Fatalf("spend tenants: %+v", spend)
	}
	ts := spend.Tenants[0]
	if ts.Outstanding != 0 || ts.Granted != ts.Consumed+ts.Refunded || ts.Consumed != h.ConsumedNanos {
		t.Fatalf("spend unreconciled: %+v", ts)
	}

	resp = cl.call(MethodDrain, "", nil)
	if resp.Code != CodeOK {
		t.Fatalf("drain: %s %s", resp.Code, resp.Error)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("daemon exited dirty: %v", err)
	}
	if _, err := os.Stat(opts.Socket); !os.IsNotExist(err) {
		t.Fatalf("socket not removed after drain: %v", err)
	}
}

func TestDaemonCrashResumeMatchesCleanRun(t *testing.T) {
	opts := testOptions(t)
	spec := TenantSpec{Name: "crashy", Cells: 12, Seed: 77}

	srv, err := Start(opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cl := dialRaw(t, opts.Socket)
	if resp := cl.call(MethodSubmit, "k", spec); resp.Code != CodeOK {
		t.Fatalf("submit: %s %s", resp.Code, resp.Error)
	}
	cl.waitLanded(3) // some, not all
	srv.Kill()

	// Restart on the same journal: admitted tenant survives, landed
	// cells are not re-executed (their spend is booked once), the rest
	// complete.
	srv2, err := Start(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srv2.Kill()
	cl2 := dialRaw(t, opts.Socket)

	resp := cl2.call(MethodSubmit, "k", spec)
	var ack SubmitResult
	if resp.Code != CodeOK {
		t.Fatalf("post-crash submit: %s %s", resp.Code, resp.Error)
	}
	if err := json.Unmarshal(resp.Result, &ack); err != nil || !ack.Resubmitted {
		t.Fatalf("journal lost the submit across the crash: %+v err=%v", ack, err)
	}

	h := cl2.waitLanded(spec.Cells)
	if want := int64(ExpectedSpend(spec, cost.Model{})); h.ConsumedNanos != want {
		t.Fatalf("spend after crash %d nanos, want %d (double execution?)", h.ConsumedNanos, want)
	}

	// An uninterrupted run of the same spec lands on the same digest.
	cleanOpts := testOptions(t)
	clean, err := Start(cleanOpts)
	if err != nil {
		t.Fatalf("clean start: %v", err)
	}
	defer clean.Kill()
	cl3 := dialRaw(t, cleanOpts.Socket)
	if resp := cl3.call(MethodSubmit, "k", spec); resp.Code != CodeOK {
		t.Fatalf("clean submit: %s %s", resp.Code, resp.Error)
	}
	hc := cl3.waitLanded(spec.Cells)
	if hc.Digest != h.Digest {
		t.Fatalf("crash-resumed digest %s != clean digest %s", h.Digest, hc.Digest)
	}
}

func TestDaemonRejections(t *testing.T) {
	opts := testOptions(t)
	srv, err := Start(opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Kill()
	cl := dialRaw(t, opts.Socket)

	if resp := cl.call(MethodSubmit, "", TenantSpec{Name: "x", Cells: 1}); resp.Code != CodeBadRequest {
		t.Errorf("submit without idem: got %s, want BAD_REQUEST", resp.Code)
	}
	if resp := cl.call(MethodSubmit, "a", TenantSpec{Name: "bad name", Cells: 1}); resp.Code != CodeBadRequest {
		t.Errorf("whitespace name: got %s, want BAD_REQUEST", resp.Code)
	}
	if resp := cl.call(MethodSubmit, "b", TenantSpec{Name: "x", Cells: 0}); resp.Code != CodeBadRequest {
		t.Errorf("zero cells: got %s, want BAD_REQUEST", resp.Code)
	}
	if resp := cl.call("made-up", "", nil); resp.Code != CodeBadRequest {
		t.Errorf("unknown method: got %s, want BAD_REQUEST", resp.Code)
	}
	if resp := cl.call(MethodSubmit, "c", TenantSpec{Name: "x", Cells: 1, Seed: 1}); resp.Code != CodeOK {
		t.Fatalf("submit: %s %s", resp.Code, resp.Error)
	}
	if resp := cl.call(MethodSubmit, "d", TenantSpec{Name: "x", Cells: 2, Seed: 2}); resp.Code != CodeBadRequest {
		t.Errorf("name conflict under a new key: got %s, want BAD_REQUEST", resp.Code)
	}

	if resp := cl.call(MethodDrain, "", nil); resp.Code != CodeOK {
		t.Fatalf("drain: %s %s", resp.Code, resp.Error)
	}
	if resp := cl.call(MethodSubmit, "e", TenantSpec{Name: "late", Cells: 1}); resp.Code != CodeDraining {
		t.Errorf("submit while draining: got %s, want DRAINING", resp.Code)
	}
}

// TestDaemonShedsAtQueueCapacity drives the readLoop shed branch
// deterministically: the core is never started, so the bounded queue
// fills and every request past capacity must bounce with RETRY_AFTER.
func TestDaemonShedsAtQueueCapacity(t *testing.T) {
	s := &Server{
		opts: Options{QueueCap: 2, Epoch: time.Millisecond}.withDefaults(),
		reqs: make(chan coreReq, 2),
	}
	s.conns = make(map[*connState]struct{})
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	c := &connState{srv: s, conn: server, out: make(chan []byte, 64), quit: make(chan struct{})}
	s.conns[c] = struct{}{}
	go c.writeLoop()
	go c.readLoop()

	br := bufio.NewReader(client)
	for i := 1; i <= 5; i++ {
		if err := WriteFrame(client, Request{ID: uint64(i), Method: MethodHealth}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// The first two sit in the queue unanswered; 3..5 are shed.
	for i := 3; i <= 5; i++ {
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		var resp Response
		if err := ReadFrame(br, &resp); err != nil {
			t.Fatalf("reading shed reply %d: %v", i, err)
		}
		if resp.Code != CodeRetryAfter {
			t.Fatalf("reply %d: code %s, want RETRY_AFTER", i, resp.Code)
		}
		if resp.RetryAfterMs <= 0 {
			t.Fatalf("reply %d: no retry hint: %+v", i, resp)
		}
	}
	if got := s.shed.Load(); got != 3 {
		t.Fatalf("shed counter %d, want 3", got)
	}
}

func TestListenUnixClearsStaleSocket(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stale.sock")
	// Manufacture a stale socket: bind, then close without unlinking.
	addr, err := net.ResolveUnixAddr("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.ListenUnix("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	ln.SetUnlinkOnClose(false)
	ln.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("stale socket missing: %v", err)
	}

	ln2, err := listenUnix(path)
	if err != nil {
		t.Fatalf("listenUnix did not clear the stale socket: %v", err)
	}
	ln2.Close()
}

func TestListenUnixRefusesLiveDaemon(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	if _, err := listenUnix(path); err == nil {
		t.Fatal("listenUnix bound over a live daemon's socket")
	}
}

func TestExpectedSpendMatchesEstimate(t *testing.T) {
	for seed := uint64(1); seed < 5; seed++ {
		spec := TenantSpec{Name: fmt.Sprintf("t%d", seed), Cells: 7, Seed: seed}
		if ExpectedSpend(spec, cost.Model{}) <= 0 {
			t.Fatalf("seed %d: nonpositive expected spend", seed)
		}
	}
}
