package soak

import (
	"testing"
)

// TestChaosSoak is the acceptance test for cashd's crash-safety story:
// seeded wire faults on every connection, two kill + restart cycles
// per scenario, and a clean replay that must reach the identical
// digest. Kept small enough for every CI run; the cashsim -chaos
// daemon scenario runs the full default shape.
func TestChaosSoak(t *testing.T) {
	opts := Options{
		Seeds:          2,
		Tenants:        4,
		CellsPerTenant: 3,
		Kills:          2,
		Dir:            t.TempDir(),
	}
	if testing.Short() {
		opts.Seeds = 1
		opts.Kills = 1
	}
	report, err := Run(opts)
	if err != nil {
		t.Fatalf("chaos soak: %v", err)
	}
	if report.Kills != opts.Seeds*opts.Kills {
		t.Fatalf("executed %d kills, want %d", report.Kills, opts.Seeds*opts.Kills)
	}
	wantCells := opts.Seeds * opts.Tenants * opts.CellsPerTenant
	if report.CellsLanded != wantCells {
		t.Fatalf("landed %d cells, want %d", report.CellsLanded, wantCells)
	}
	if len(report.Digests) != opts.Seeds {
		t.Fatalf("recorded %d digests, want %d", len(report.Digests), opts.Seeds)
	}
	for i, d := range report.Digests {
		if len(d) != 16 {
			t.Fatalf("digest %d malformed: %q", i, d)
		}
	}
}

func TestSoakRejectsBadShape(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("soak ran without a scratch directory")
	}
	if _, err := Run(Options{Dir: t.TempDir(), Tenants: -1}); err == nil {
		t.Fatal("soak accepted a negative tenant count")
	}
}
