// Package soak is the cashd chaos soak: it drives a fault-injected
// daemon through repeated kill -9 + restart cycles with the retrying
// client and audits the wreckage — every cell executed exactly once,
// every nanodollar reconciled, and a clean replay of the same seed
// reaching the identical state digest.
package soak

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"cash/internal/cost"
	"cash/internal/daemon"
	"cash/internal/daemon/client"
	"cash/internal/fault"
	"cash/internal/fleet"
)

// Options configure the daemon chaos soak: for each seed, a daemon
// with a fault-injected wire is started, tenants are submitted through
// the retrying client, the daemon is killed and restarted on the same
// journal Kills times mid-execution, and the survivors are audited.
type Options struct {
	// Seeds is the number of seeded scenarios (default 3).
	Seeds int
	// Tenants and CellsPerTenant size each scenario (defaults 6, 4).
	Tenants, CellsPerTenant int
	// Kills is the number of kill + restart cycles per scenario
	// (default 2).
	Kills int
	// Dir holds sockets and journals (required; a test TempDir).
	Dir string
	// Epoch overrides the daemon tick interval (default 2ms — fast
	// enough to finish, slow enough that kills land mid-execution).
	Epoch time.Duration
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Seeds == 0 {
		o.Seeds = 3
	}
	if o.Tenants == 0 {
		o.Tenants = 6
	}
	if o.CellsPerTenant == 0 {
		o.CellsPerTenant = 4
	}
	if o.Kills == 0 {
		o.Kills = 2
	}
	if o.Epoch == 0 {
		o.Epoch = 2 * time.Millisecond
	}
	return o
}

// Report aggregates a soak run.
type Report struct {
	Seeds         int
	Kills         int
	CellsLanded   int
	ConsumedNanos int64
	// Digests holds each scenario's final state digest; the replay
	// check already proved each matches its clean re-run.
	Digests []string
}

// Run executes the daemon chaos soak and fails on the first violation
// of exactly-once execution, spend reconciliation or replay
// determinism.
func Run(opts Options) (Report, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return Report{}, fmt.Errorf("soak: needs a scratch directory")
	}
	if opts.Seeds < 0 || opts.Kills < 0 || opts.Tenants <= 0 || opts.CellsPerTenant <= 0 {
		return Report{}, fmt.Errorf("soak: invalid shape %+v", opts)
	}
	report := Report{Seeds: opts.Seeds}
	for s := 0; s < opts.Seeds; s++ {
		seed := uint64(1000 + 17*s)
		digest, landed, consumed, kills, err := runScenario(opts, s, seed, true)
		if err != nil {
			return report, fmt.Errorf("seed %d (chaos): %w", seed, err)
		}
		report.Kills += kills
		report.CellsLanded += landed
		report.ConsumedNanos += consumed

		// Replay: the same tenants on a fresh journal with a clean wire
		// and no kills. The digest is a pure function of what was
		// submitted, so however violently the chaos run got there, the
		// two must agree bit for bit.
		replay, _, replayConsumed, _, err := runScenario(opts, s, seed, false)
		if err != nil {
			return report, fmt.Errorf("seed %d (replay): %w", seed, err)
		}
		if replay != digest {
			return report, fmt.Errorf("seed %d: chaos digest %s != replay digest %s", seed, digest, replay)
		}
		if replayConsumed != consumed {
			return report, fmt.Errorf("seed %d: chaos consumed %d != replay consumed %d", seed, consumed, replayConsumed)
		}
		report.Digests = append(report.Digests, digest)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "daemon-soak: seed %d ok: %d cells, %d nanos, %d kills, digest %s\n",
				seed, landed, consumed, kills, digest)
		}
	}
	return report, nil
}

func dial(socket string, seed uint64) (*client.Client, error) {
	return client.Dial(client.Options{
		Socket:      socket,
		Seed:        seed,
		Timeout:     2 * time.Second,
		MaxAttempts: 12,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
}

// runScenario runs one seeded scenario to completion and returns the
// final digest, cells landed, nanodollars consumed and kills executed.
// With chaos true the wire injects faults and the daemon is killed and
// restarted opts.Kills times; with chaos false the run is clean (the
// replay baseline).
func runScenario(opts Options, idx int, seed uint64, chaos bool) (digest string, landed int, consumed int64, kills int, err error) {
	suffix := "replay"
	if chaos {
		suffix = "chaos"
	}
	socket := filepath.Join(opts.Dir, fmt.Sprintf("cashd-%d-%s.sock", idx, suffix))
	journal := filepath.Join(opts.Dir, fmt.Sprintf("cashd-%d-%s.jsonl", idx, suffix))
	dopts := daemon.Options{
		Socket:       socket,
		Journal:      journal,
		Epoch:        opts.Epoch,
		QueueCap:     16,
		DrainTimeout: 30 * time.Second,
		Log:          opts.Log,
	}
	if chaos {
		dopts.WireFaults = fault.DefaultWireSpec(seed)
	}
	srv, err := daemon.Start(dopts)
	if err != nil {
		return "", 0, 0, 0, err
	}
	defer func() { srv.Kill() }() // no-op after a clean drain

	cl, err := dial(socket, seed)
	if err != nil {
		return "", 0, 0, 0, err
	}
	defer cl.Close()

	// Submit every tenant through the retrying client; the idempotency
	// key makes retries (and wire-fault duplicates) exactly-once.
	specs := make([]daemon.TenantSpec, opts.Tenants)
	var want fleet.Nanos
	for t := 0; t < opts.Tenants; t++ {
		specs[t] = daemon.TenantSpec{
			Name:  fmt.Sprintf("tenant-%d", t),
			Cells: opts.CellsPerTenant,
			Seed:  seed + uint64(t)*101,
		}
		want += daemon.ExpectedSpend(specs[t], cost.Model{})
		idem := fmt.Sprintf("seed-%d-tenant-%d", seed, t)
		if _, err := cl.Submit(idem, specs[t]); err != nil {
			return "", 0, 0, 0, fmt.Errorf("submit %s: %w", specs[t].Name, err)
		}
		// Duplicate submit under the same key must ack as a replay, not
		// double-admit.
		ack, err := cl.Submit(idem, specs[t])
		if err != nil {
			return "", 0, 0, 0, fmt.Errorf("duplicate submit %s: %w", specs[t].Name, err)
		}
		if !ack.Resubmitted {
			return "", 0, 0, 0, fmt.Errorf("duplicate submit %s not marked resubmitted", specs[t].Name)
		}
	}

	// A watcher streams epochs in the background, reconnecting across
	// kills and fault-severed connections — proving the stream never
	// wedges a client. It stops on the drain's Final event or when the
	// scenario signals it to.
	stop := make(chan struct{})
	watchDone := make(chan int, 1)
	go func() {
		events := 0
		defer func() { watchDone <- events }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			wcl, werr := dial(socket, seed^0xabcd)
			if werr != nil {
				return
			}
			werr = wcl.Watch(2*time.Second, func(ev daemon.Epoch) bool {
				events++
				return !ev.Final
			})
			wcl.Close()
			if werr == nil {
				return // Final seen or handler stopped
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer close(stop)

	totalCells := opts.Tenants * opts.CellsPerTenant
	if chaos {
		for k := 0; k < opts.Kills; k++ {
			// Let some cells land, then kill mid-execution.
			if _, err := waitProgress(cl, (k+1)*totalCells/(opts.Kills+2)); err != nil {
				return "", 0, 0, kills, fmt.Errorf("pre-kill %d: %w", k+1, err)
			}
			srv.Kill()
			kills++
			srv, err = daemon.Start(dopts)
			if err != nil {
				return "", 0, 0, kills, fmt.Errorf("restart %d: %w", k+1, err)
			}
			// Resubmitting after a crash must still dedup: the journal,
			// not process memory, is the source of truth.
			idem := fmt.Sprintf("seed-%d-tenant-%d", seed, 0)
			ack, aerr := cl.Submit(idem, specs[0])
			if aerr != nil {
				return "", 0, 0, kills, fmt.Errorf("post-restart resubmit: %w", aerr)
			}
			if !ack.Resubmitted {
				return "", 0, 0, kills, fmt.Errorf("restart %d lost submit %s", k+1, idem)
			}
		}
	}

	// Wait for every cell to land, then audit.
	health, err := waitProgress(cl, totalCells)
	if err != nil {
		return "", 0, 0, kills, err
	}
	if health.CellsLanded != totalCells || health.CellsTotal != totalCells {
		return "", 0, 0, kills, fmt.Errorf("landed %d/%d of %d cells",
			health.CellsLanded, health.CellsTotal, totalCells)
	}
	if health.Tenants != opts.Tenants {
		return "", 0, 0, kills, fmt.Errorf("admitted %d tenants, want %d (duplicate admission?)",
			health.Tenants, opts.Tenants)
	}

	// Spend reconciliation to the nanodollar: each tenant consumed
	// exactly its computed price, nothing outstanding, books balanced.
	spend, err := cl.Spend()
	if err != nil {
		return "", 0, 0, kills, err
	}
	var total fleet.Nanos
	for i, ts := range spend.Tenants {
		exp := daemon.ExpectedSpend(specs[i], cost.Model{})
		if fleet.Nanos(ts.Consumed) != exp {
			return "", 0, 0, kills, fmt.Errorf("tenant %s consumed %d nanos, want %d", ts.Name, ts.Consumed, exp)
		}
		if ts.Outstanding != 0 {
			return "", 0, 0, kills, fmt.Errorf("tenant %s has %d nanos outstanding after completion", ts.Name, ts.Outstanding)
		}
		if ts.Granted != ts.Consumed+ts.Refunded {
			return "", 0, 0, kills, fmt.Errorf("tenant %s books unbalanced: granted %d != consumed %d + refunded %d",
				ts.Name, ts.Granted, ts.Consumed, ts.Refunded)
		}
		total += fleet.Nanos(ts.Consumed)
	}
	if total != want || fleet.Nanos(spend.RootConsumed) != want {
		return "", 0, 0, kills, fmt.Errorf("root consumed %d nanos, want %d", spend.RootConsumed, want)
	}

	// Graceful drain: the daemon settles, compacts and exits clean.
	if err := cl.Drain(); err != nil {
		return "", 0, 0, kills, fmt.Errorf("drain: %w", err)
	}
	if err := srv.Wait(); err != nil {
		return "", 0, 0, kills, fmt.Errorf("daemon exited dirty: %w", err)
	}
	return health.Digest, health.CellsLanded, health.ConsumedNanos, kills, nil
}

// waitProgress polls health until at least target cells landed,
// tolerating transient failures while a kill/restart is in flight.
func waitProgress(cl *client.Client, target int) (daemon.HealthResult, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		h, err := cl.Health()
		if err == nil && h.CellsLanded >= target {
			return h, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return daemon.HealthResult{}, fmt.Errorf("health poll: %w", err)
			}
			return h, fmt.Errorf("stalled at %d/%d cells landed", h.CellsLanded, target)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
