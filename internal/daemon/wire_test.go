package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{ID: 7, Method: MethodSubmit, Idem: "k-1",
		Params: json.RawMessage(`{"name":"t0","cells":3,"seed":9}`)}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	resp := Response{ID: 7, Code: CodeOK, Result: json.RawMessage(`{"ok":true}`)}
	if err := WriteFrame(&buf, resp); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}

	r := bufio.NewReader(&buf)
	var gotReq Request
	if err := ReadFrame(r, &gotReq); err != nil {
		t.Fatalf("ReadFrame request: %v", err)
	}
	if gotReq.ID != 7 || gotReq.Method != MethodSubmit || gotReq.Idem != "k-1" {
		t.Fatalf("request round-trip mangled: %+v", gotReq)
	}
	var gotResp Response
	if err := ReadFrame(r, &gotResp); err != nil {
		t.Fatalf("ReadFrame response: %v", err)
	}
	if gotResp.ID != 7 || gotResp.Code != CodeOK {
		t.Fatalf("response round-trip mangled: %+v", gotResp)
	}
}

func TestReadFrameRejectsViolations(t *testing.T) {
	frame := func(v any) []byte {
		b, err := AppendFrame(nil, v)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		return b
	}
	good := frame(Request{ID: 1, Method: MethodHealth})
	cases := []struct {
		name string
		raw  []byte
	}{
		{"empty", nil},
		{"torn prefix", good[:3]},
		{"torn payload", good[:len(good)-2]},
		{"garbage prefix", []byte("zzzzzz\n" + `{"id":1}` + "\n")},
		{"prefix without newline", append([]byte("000010"), good...)},
		{"oversize length", []byte("ffffff\n")},
		{"zero length", []byte("000000\n")},
		{"payload missing newline", append(append([]byte{}, good[:len(good)-1]...), 'x')},
		{"payload not json", []byte("000004\nhi!\n")},
	}
	for _, tc := range cases {
		var v Request
		if err := ReadFrame(bufio.NewReader(bytes.NewReader(tc.raw)), &v); err == nil {
			t.Errorf("%s: ReadFrame accepted a broken frame", tc.name)
		}
	}
}

func TestAppendFrameRejectsOversize(t *testing.T) {
	big := strings.Repeat("x", MaxFrame)
	if _, err := AppendFrame(nil, big); err == nil {
		t.Fatal("AppendFrame accepted a payload beyond MaxFrame")
	}
}

func TestIdempotentMethods(t *testing.T) {
	for _, m := range []string{MethodAlloc, MethodSpend, MethodWatch, MethodHealth, MethodDrain} {
		if !Idempotent(m) {
			t.Errorf("%s should be idempotent", m)
		}
	}
	if Idempotent(MethodSubmit) {
		t.Error("submit-tenant must not be idempotent without a key")
	}
	if Idempotent("nonsense") {
		t.Error("unknown methods must not be idempotent")
	}
}
