package daemon

import (
	"net"
	"sync"

	"cash/internal/fault"
	"cash/internal/supervise"
)

// faultConn wraps an accepted connection and subjects every outbound
// frame to a seeded fault decision: pass, drop (the client times out
// and retries), delay, duplicate (the client's ID matching discards the
// copy), truncate-and-sever (the client's framing detects the tear), or
// reorder past the next frame. The server writes exactly one frame per
// Write call, so "per Write" is "per frame". Decisions come from a
// fault.WireFaults forked per connection, so each connection replays
// its fault sequence deterministically from the spec seed regardless of
// how connections interleave.
type faultConn struct {
	net.Conn
	fw    *fault.WireFaults
	clock supervise.Clock

	mu   sync.Mutex // guards held against a Close racing the writer
	held []byte     // a reordered frame awaiting the next write
}

// newFaultConn wraps conn; a nil faults generator returns conn as is.
func newFaultConn(conn net.Conn, fw *fault.WireFaults, clock supervise.Clock) net.Conn {
	if fw == nil {
		return conn
	}
	return &faultConn{Conn: conn, fw: fw, clock: clock}
}

func (c *faultConn) takeHeld() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.held
	c.held = nil
	return h
}

func (c *faultConn) Write(b []byte) (int, error) {
	// A frame held back by an earlier reorder goes out after this one,
	// whatever this one's fate — the reordering is one swap, not a
	// shuffle.
	prior := c.takeHeld()
	defer func() {
		if prior != nil {
			c.Conn.Write(prior)
		}
	}()
	switch c.fw.Next() {
	case fault.WireDrop:
		// Lie about success; the frame evaporates.
		return len(b), nil
	case fault.WireDelay:
		c.clock.Sleep(c.fw.Delay())
		return c.Conn.Write(b)
	case fault.WireDup:
		if n, err := c.Conn.Write(b); err != nil {
			return n, err
		}
		return c.Conn.Write(b)
	case fault.WireTruncate:
		c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return len(b), nil
	case fault.WireReorder:
		c.mu.Lock()
		c.held = append([]byte(nil), b...)
		c.mu.Unlock()
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// Close flushes a held frame so a reorder at stream end is a delay, not
// a loss, then closes the underlying connection.
func (c *faultConn) Close() error {
	if h := c.takeHeld(); h != nil {
		c.Conn.Write(h)
	}
	return c.Conn.Close()
}
