package stats

// Phase detection over a QoS sample series. The paper's methodology
// identifies an application's distinct processing phases by examining
// simulation output (§V-C: "We manually determine ... any distinct
// processing phases"); this is the automated equivalent — a recursive
// change-point detector that the harness can run over per-quantum IPC
// series to recover phase boundaries, and that tests use to verify the
// workload models actually produce the phases they claim.
//
// The detector is a binary-segmentation change-point search: it finds
// the split that maximizes the between-segment variance reduction,
// accepts it if the means differ by more than a relative threshold,
// and recurses into both halves.

// PhaseDetectOptions tune DetectPhases. Zero values select defaults.
type PhaseDetectOptions struct {
	// MinSegment is the minimum samples per phase (default 8).
	MinSegment int
	// MinShift is the relative mean shift that counts as a phase change
	// (default 0.15, i.e. 15%).
	MinShift float64
	// MaxPhases bounds the recursion (default 32).
	MaxPhases int
}

func (o PhaseDetectOptions) withDefaults() PhaseDetectOptions {
	if o.MinSegment <= 0 {
		o.MinSegment = 8
	}
	if o.MinShift <= 0 {
		o.MinShift = 0.15
	}
	if o.MaxPhases <= 0 {
		o.MaxPhases = 32
	}
	return o
}

// DetectPhases returns the boundaries of detected phases as indices
// into the series: boundaries[i] is the first sample of phase i+1. An
// empty result means the series looks like a single phase.
func DetectPhases(series []float64, opts PhaseDetectOptions) []int {
	opts = opts.withDefaults()
	var out []int
	segment(series, 0, opts, &out)
	sortInts(out)
	return out
}

// segment recursively splits series[base:...].
func segment(s []float64, base int, opts PhaseDetectOptions, out *[]int) {
	if len(*out) >= opts.MaxPhases-1 || len(s) < 2*opts.MinSegment {
		return
	}
	split, ok := bestSplit(s, opts)
	if !ok {
		return
	}
	*out = append(*out, base+split)
	segment(s[:split], base, opts, out)
	segment(s[split:], base+split, opts, out)
}

// bestSplit finds the index that best separates the series into two
// segments with different means, or reports that none qualifies.
func bestSplit(s []float64, opts PhaseDetectOptions) (int, bool) {
	n := len(s)
	// Prefix sums make every candidate split O(1).
	prefix := make([]float64, n+1)
	for i, v := range s {
		prefix[i+1] = prefix[i] + v
	}
	total := prefix[n]
	bestIdx, bestGain := -1, 0.0
	for i := opts.MinSegment; i <= n-opts.MinSegment; i++ {
		left := prefix[i] / float64(i)
		right := (total - prefix[i]) / float64(n-i)
		// Between-segment variance contribution of this split.
		d := left - right
		gain := float64(i) * float64(n-i) / float64(n) * d * d
		if gain > bestGain {
			bestIdx, bestGain = i, gain
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	left := prefix[bestIdx] / float64(bestIdx)
	right := (total - prefix[bestIdx]) / float64(n-bestIdx)
	mean := total / float64(n)
	if mean == 0 {
		return 0, false
	}
	if abs(left-right)/abs(mean) < opts.MinShift {
		return 0, false
	}
	return bestIdx, true
}

// PhaseMeans returns the per-phase mean values given boundaries from
// DetectPhases.
func PhaseMeans(series []float64, boundaries []int) []float64 {
	out := make([]float64, 0, len(boundaries)+1)
	start := 0
	for _, b := range append(append([]int{}, boundaries...), len(series)) {
		if b > start {
			out = append(out, Mean(series[start:b]))
		}
		start = b
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
