package stats

import (
	"math"
	"math/bits"
)

// Histogram is an HDR-style latency histogram: log-spaced buckets with
// a fixed relative resolution, O(1) Record, mergeable, and an exact
// small-N mode so short runs report precise quantiles. It exists for
// the open-loop serving path, where per-request latencies arrive tens
// of millions at a time and the metrics that matter are tail quantiles
// (p99, p999) rather than means — storing raw samples would be
// O(requests) memory, exactly what the serving engine must avoid.
//
// Values are non-negative int64s (cycles). Each power-of-two octave is
// split into histSubBuckets linear sub-buckets, so any recorded value
// is reproduced within a relative error of 1/histSubBuckets (~3%).
// The zero value is ready to use. Histogram is plain data with no
// pointers into shared state, so copying a merged snapshot is safe.
type Histogram struct {
	// exact holds raw samples until their count exceeds histExactMax;
	// after spill the histogram is bucket-backed for the rest of its
	// life. Small runs (calibration probes, single quanta) therefore
	// get exact quantiles.
	exact []int64
	// buckets[i] counts values in log-spaced bucket i; allocated on
	// spill. count is the total across exact/buckets.
	buckets []int64
	count   int64
	sum     int64
	max     int64
	min     int64 // valid when count > 0
}

const (
	// histSubBuckets is the per-octave linear resolution: quantiles are
	// exact to within 1/32 ≈ 3.2% once the exact mode has spilled.
	histSubBuckets = 32
	histSubShift   = 5 // log2(histSubBuckets)
	// histExactMax is the exact-mode capacity. 256 samples cost 2KB and
	// cover every "short run" case (a control quantum completes far
	// fewer requests than this only in degenerate overload).
	histExactMax = 256
	// histBuckets spans the full non-negative int64 range: 1 bucket for
	// zero, histSubBuckets linear buckets below 2*histSubBuckets, then
	// histSubBuckets per octave up to 2^63.
	histBuckets = (64 - histSubShift) * histSubBuckets
)

// bucketIndex maps a value to its log-spaced bucket.
func bucketIndex(v int64) int {
	if v < histSubBuckets {
		return int(v) // exact low range, one value per bucket
	}
	// The octave is floor(log2(v)); within it, the histSubShift bits
	// after the leading one select the linear sub-bucket. bits.Len64
	// keeps Record branch-light on the serving hot path.
	lg := bits.Len64(uint64(v)) - 1
	shift := uint(lg - histSubShift)
	sub := int(v>>shift) - histSubBuckets // in [0, histSubBuckets)
	return (lg-histSubShift)*histSubBuckets + histSubBuckets + sub
}

// bucketMid returns the representative (midpoint) value of a bucket.
func bucketMid(i int) float64 {
	if i < histSubBuckets {
		return float64(i)
	}
	oct := (i - histSubBuckets) / histSubBuckets
	sub := (i - histSubBuckets) % histSubBuckets
	lo := (int64(histSubBuckets) + int64(sub)) << uint(oct)
	width := int64(1) << uint(oct)
	return float64(lo) + float64(width-1)/2
}

// Record adds one sample. Negative values clamp to zero (latencies are
// non-negative by construction; a negative input is a caller bug that
// must not corrupt the bucket index).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.buckets == nil {
		if len(h.exact) < histExactMax {
			h.exact = append(h.exact, v)
			return
		}
		h.spill()
	}
	h.buckets[bucketIndex(v)]++
}

// spill converts exact mode to bucket mode.
func (h *Histogram) spill() {
	h.buckets = make([]int64, histBuckets)
	for _, v := range h.exact {
		h.buckets[bucketIndex(v)]++
	}
	h.exact = nil
}

// Count returns how many samples were recorded.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total of all recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Reset empties the histogram, retaining the bucket array for reuse.
func (h *Histogram) Reset() {
	h.exact = h.exact[:0]
	if h.buckets != nil {
		for i := range h.buckets {
			h.buckets[i] = 0
		}
	}
	h.count, h.sum, h.max, h.min = 0, 0, 0, 0
}

// Merge folds o's samples into h. Merging bucket-backed histograms is
// O(buckets); exact-mode operands replay their raw samples, preserving
// exactness when both sides are small.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if o.exact != nil {
		for _, v := range o.exact {
			h.Record(v)
		}
		return
	}
	if h.buckets == nil {
		h.spill()
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	if o.min < h.min || h.count == 0 {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded values:
// exact while in exact mode, otherwise the midpoint of the bucket
// holding the q-th sample (within 1/histSubBuckets relative error).
// Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic reported: the
	// nearest-rank definition, so p100 is the max and p0 the min.
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if h.buckets == nil {
		// Exact mode: selection by insertion into a copy is overkill;
		// sort a scratch copy (N ≤ histExactMax).
		tmp := make([]int64, len(h.exact))
		copy(tmp, h.exact)
		sortInt64(tmp)
		return float64(tmp[rank-1])
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return bucketMid(i)
		}
	}
	return float64(h.max)
}

// sortInt64 is an insertion sort: the exact-mode slice is ≤
// histExactMax entries and nearly free of allocator noise.
func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
