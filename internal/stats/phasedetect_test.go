package stats

import (
	"testing"
	"testing/quick"
)

func step(levels []float64, perLevel int) []float64 {
	var out []float64
	for _, l := range levels {
		for i := 0; i < perLevel; i++ {
			// Small deterministic ripple so segments are not constant.
			out = append(out, l+0.01*float64(i%3))
		}
	}
	return out
}

func TestDetectSingleStep(t *testing.T) {
	s := step([]float64{0.2, 0.6}, 40)
	b := DetectPhases(s, PhaseDetectOptions{})
	if len(b) != 1 {
		t.Fatalf("found %d boundaries, want 1 (%v)", len(b), b)
	}
	if b[0] < 35 || b[0] > 45 {
		t.Errorf("boundary at %d, want ~40", b[0])
	}
}

func TestDetectMultipleSteps(t *testing.T) {
	s := step([]float64{0.2, 0.6, 0.3, 0.9}, 30)
	b := DetectPhases(s, PhaseDetectOptions{})
	if len(b) != 3 {
		t.Fatalf("found %d boundaries, want 3 (%v)", len(b), b)
	}
	for i, want := range []int{30, 60, 90} {
		if b[i] < want-5 || b[i] > want+5 {
			t.Errorf("boundary %d at %d, want ~%d", i, b[i], want)
		}
	}
	means := PhaseMeans(s, b)
	if len(means) != 4 {
		t.Fatalf("got %d phase means, want 4", len(means))
	}
	wantMeans := []float64{0.2, 0.6, 0.3, 0.9}
	for i, m := range means {
		if abs(m-wantMeans[i]) > 0.05 {
			t.Errorf("phase %d mean %.3f, want ~%.2f", i, m, wantMeans[i])
		}
	}
}

func TestDetectNoPhase(t *testing.T) {
	flat := step([]float64{0.5}, 100)
	if b := DetectPhases(flat, PhaseDetectOptions{}); len(b) != 0 {
		t.Errorf("flat series produced boundaries %v", b)
	}
	// Shifts below the threshold are ignored.
	tiny := step([]float64{0.50, 0.52}, 50)
	if b := DetectPhases(tiny, PhaseDetectOptions{MinShift: 0.2}); len(b) != 0 {
		t.Errorf("sub-threshold shift produced boundaries %v", b)
	}
}

func TestDetectShortSeries(t *testing.T) {
	if b := DetectPhases([]float64{1, 2, 3}, PhaseDetectOptions{}); len(b) != 0 {
		t.Errorf("too-short series produced boundaries %v", b)
	}
	if b := DetectPhases(nil, PhaseDetectOptions{}); len(b) != 0 {
		t.Error("nil series produced boundaries")
	}
}

func TestDetectMaxPhases(t *testing.T) {
	s := step([]float64{0.1, 0.9, 0.1, 0.9, 0.1, 0.9, 0.1, 0.9}, 20)
	b := DetectPhases(s, PhaseDetectOptions{MaxPhases: 3})
	if len(b) > 2 {
		t.Errorf("MaxPhases=3 allows at most 2 boundaries, got %d", len(b))
	}
}

func TestDetectInvariantsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make([]float64, len(raw))
		for i, r := range raw {
			s[i] = float64(r) / 255
		}
		b := DetectPhases(s, PhaseDetectOptions{})
		// Boundaries must be sorted, in range, and respect MinSegment.
		prev := 0
		for _, x := range b {
			if x <= prev || x >= len(s) {
				return false
			}
			prev = x
		}
		return len(PhaseMeans(s, b)) <= len(b)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
