package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// refQuantile is the nearest-rank quantile of a sorted slice — the
// definition Histogram.Quantile implements.
func refQuantile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted)) * q)
	if float64(rank) < float64(len(sorted))*q {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1])
}

// TestHistogramQuantileProperty records random samples from several
// distributions and checks every reported quantile against the exact
// sorted-slice quantile, within the bucket resolution (one part in
// histSubBuckets) once the exact mode has spilled, and exactly before.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(20_000)
		var h Histogram
		vals := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			var v int64
			switch trial % 4 {
			case 0: // uniform small
				v = int64(rng.Intn(1000))
			case 1: // exponential-ish tail (the latency shape that matters)
				v = int64(rng.ExpFloat64() * 110_000)
			case 2: // heavy constant body + rare huge outliers
				v = 5000
				if rng.Intn(100) == 0 {
					v = int64(1 + rng.Intn(1<<40))
				}
			default: // full-range
				v = rng.Int63()
			}
			h.Record(v)
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range quantiles {
			got := h.Quantile(q)
			want := refQuantile(vals, q)
			tol := 0.0
			if n > histExactMax {
				// Bucket mode: relative resolution 1/histSubBuckets
				// (plus half a bucket of midpoint rounding).
				tol = want/histSubBuckets + 1
			}
			if diff := got - want; diff > tol || diff < -tol {
				t.Fatalf("trial %d n=%d q=%v: got %v, want %v (tol %v)", trial, n, q, got, want, tol)
			}
		}
		if h.Count() != int64(n) {
			t.Fatalf("count %d, want %d", h.Count(), n)
		}
		if h.Min() != vals[0] || h.Max() != vals[len(vals)-1] {
			t.Fatalf("min/max %d/%d, want %d/%d", h.Min(), h.Max(), vals[0], vals[len(vals)-1])
		}
	}
}

// TestHistogramMerge checks that merging partial histograms is
// equivalent to recording everything into one, across all mode
// combinations (exact+exact, exact+bucket, bucket+bucket).
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sizes := range [][2]int{{10, 20}, {10, 5000}, {5000, 10}, {3000, 4000}} {
		var a, b, all Histogram
		for i := 0; i < sizes[0]; i++ {
			v := int64(rng.Intn(1 << 30))
			a.Record(v)
			all.Record(v)
		}
		for i := 0; i < sizes[1]; i++ {
			v := int64(rng.Intn(1 << 30))
			b.Record(v)
			all.Record(v)
		}
		a.Merge(&b)
		if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Min() != all.Min() || a.Max() != all.Max() {
			t.Fatalf("sizes %v: merged count/sum/min/max diverge", sizes)
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			got, want := a.Quantile(q), all.Quantile(q)
			tol := want/histSubBuckets + 1
			if diff := got - want; diff > tol || diff < -tol {
				t.Fatalf("sizes %v q=%v: merged %v, combined %v", sizes, q, got, want)
			}
		}
	}
}

// TestHistogramMergeProperty is the full merge property: folding any
// number of shards in any order is equivalent to recording every sample
// into a single histogram. Count/sum/min/max must agree exactly; each
// quantile must agree within the bucket resolution (1/histSubBuckets ≈
// 3.2% relative, plus half a bucket of midpoint rounding). The shard
// sizes straddle histExactMax so every merge-mode combination
// (exact+exact, exact+bucket, bucket+bucket) occurs across trials.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 30; trial++ {
		nShards := 2 + rng.Intn(6)
		shards := make([]*Histogram, nShards)
		var all Histogram
		for s := range shards {
			shards[s] = &Histogram{}
			// Sizes from tiny (stays exact) to thousands (spills).
			n := 1 + rng.Intn(3*histExactMax)
			for i := 0; i < n; i++ {
				var v int64
				switch (trial + s) % 3 {
				case 0:
					v = int64(rng.Intn(500))
				case 1:
					v = int64(rng.ExpFloat64() * 90_000)
				default:
					v = int64(rng.Intn(1 << 45))
				}
				shards[s].Record(v)
				all.Record(v)
			}
		}
		// Fold the shards in a random permutation order.
		var merged Histogram
		for _, s := range rng.Perm(nShards) {
			merged.Merge(shards[s])
		}
		if merged.Count() != all.Count() || merged.Sum() != all.Sum() ||
			merged.Min() != all.Min() || merged.Max() != all.Max() {
			t.Fatalf("trial %d (%d shards): merged count/sum/min/max = %d/%d/%d/%d, want %d/%d/%d/%d",
				trial, nShards, merged.Count(), merged.Sum(), merged.Min(), merged.Max(),
				all.Count(), all.Sum(), all.Min(), all.Max())
		}
		for _, q := range quantiles {
			got, want := merged.Quantile(q), all.Quantile(q)
			tol := want/histSubBuckets + 1
			if diff := got - want; diff > tol || diff < -tol {
				t.Fatalf("trial %d q=%v: merged %v, single-histogram %v (tol %v)",
					trial, q, got, want, tol)
			}
		}
		// Order independence: a second permutation must agree with the
		// first on every quantile, not merely within tolerance of the
		// combined reference.
		var merged2 Histogram
		for _, s := range rng.Perm(nShards) {
			merged2.Merge(shards[s])
		}
		for _, q := range quantiles {
			a, b := merged.Quantile(q), merged2.Quantile(q)
			tol := a/histSubBuckets + 1
			if diff := a - b; diff > tol || diff < -tol {
				t.Fatalf("trial %d q=%v: merge order changed the quantile: %v vs %v", trial, q, a, b)
			}
		}
		if merged.Count() != merged2.Count() || merged.Sum() != merged2.Sum() {
			t.Fatalf("trial %d: merge order changed count/sum", trial)
		}
	}
	// Degenerate operands: merging nil and empty histograms is a no-op.
	var h, empty Histogram
	h.Record(7)
	h.Merge(nil)
	h.Merge(&empty)
	if h.Count() != 1 || h.Quantile(1) != 7 {
		t.Fatalf("nil/empty merge disturbed the histogram: count=%d", h.Count())
	}
}

// TestHistogramResetReuse: a reset histogram must behave as a fresh one
// while retaining its bucket storage.
func TestHistogramReset(t *testing.T) {
	var h Histogram
	for i := int64(0); i < histExactMax*2; i++ {
		h.Record(i * 1000)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("reset histogram not empty")
	}
	h.Record(42)
	if h.Count() != 1 || h.Quantile(0.5) != 42 {
		t.Fatalf("post-reset record broken: count=%d p50=%v", h.Count(), h.Quantile(0.5))
	}
}

// TestHistogramNegativeClamp: negative inputs clamp to zero instead of
// corrupting the bucket index.
func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.Record(-5)
	h.Record(10)
	if h.Min() != 0 || h.Quantile(0) != 0 {
		t.Fatalf("negative sample not clamped: min=%d", h.Min())
	}
}

// TestBucketIndexMonotone: the bucket index must be monotone in the
// value and the midpoint must stay within the bucket's relative width.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 10, 1<<20 + 7, 1 << 40, 1<<62 + 12345} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d)=%d below previous %d", v, i, prev)
		}
		prev = i
		mid := bucketMid(i)
		tol := float64(v)/histSubBuckets + 1
		if diff := mid - float64(v); diff > tol || diff < -tol {
			t.Fatalf("bucketMid(%d)=%v far from value %d", i, mid, v)
		}
	}
}
