package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if g := Geomean([]float64{0, -1, 4}); g != 4 {
		t.Errorf("non-positive values must be ignored: %v", g)
	}
}

func TestGeomeanBetweenMinMaxQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]float64, 0, len(raw))
		for _, r := range raw {
			vals = append(vals, 0.001+float64(r))
		}
		if len(vals) == 0 {
			return true
		}
		g := Geomean(vals)
		return g >= Min(vals)-1e-9 && g <= Max(vals)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	v := []float64{3, 1, 2}
	if Mean(v) != 2 || Min(v) != 1 || Max(v) != 3 {
		t.Errorf("Mean/Min/Max = %v/%v/%v", Mean(v), Min(v), Max(v))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty inputs must give zero")
	}
}

func TestResample(t *testing.T) {
	in := []float64{1, 1, 2, 2, 3, 3}
	out := Resample(in, 3)
	if len(out) != 3 || out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Errorf("Resample = %v", out)
	}
	if got := Resample(in, 100); len(got) != len(in) {
		t.Error("upsampling must return a copy of the input")
	}
	if Resample(in, 0) != nil || Resample(nil, 5) != nil {
		t.Error("degenerate inputs must return nil")
	}
}

func TestResamplePreservesMeanQuick(t *testing.T) {
	f := func(raw []uint8, nRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		for i, r := range raw {
			in[i] = float64(r)
		}
		n := 1 + int(nRaw%16)
		out := Resample(in, n)
		// Bucket means stay within the global range.
		for _, v := range out {
			if v < Min(in)-1e-9 || v > Max(in)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRenderGrid(t *testing.T) {
	grid := [][]float64{{0, 1}, {2, 3}}
	out := RenderGrid(grid, func(i int) string { return "r" }, []string{"a", "b"})
	if !strings.Contains(out, "@") {
		t.Error("maximum cell should render the brightest shade")
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("column labels missing")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 4 {
		t.Error("grid render too short")
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries([]string{"x", "y"},
		[][]float64{{1, 2, 3}, {3, 2, 1}}, 5)
	if !strings.Contains(out, "o=x") || !strings.Contains(out, "+=y") {
		t.Errorf("legend missing:\n%s", out)
	}
	if RenderSeries(nil, nil, 5) != "" {
		t.Error("empty input must render nothing")
	}
	if RenderSeries([]string{"x"}, [][]float64{{}}, 5) != "" {
		t.Error("empty series must render nothing")
	}
	// A constant series must not divide by zero.
	if out := RenderSeries([]string{"c"}, [][]float64{{5, 5, 5}}, 4); out == "" {
		t.Error("constant series should still render")
	}
}
