// Package stats provides the small statistical and rendering helpers
// the evaluation harness uses: geometric means (the paper reports
// geomean costs), series resampling for time-series figures, and ASCII
// rendering of contour grids and time series so every figure can be
// regenerated in a terminal.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of the values. Non-positive values
// are ignored (a zero cost would otherwise collapse the mean); an empty
// input yields 0.
func Geomean(values []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Min and Max return the extrema (0 for empty input).
func Min(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value (0 for empty input).
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Resample reduces a series to n points by averaging buckets — how the
// harness condenses thousands of quantum samples into the row counts
// the paper's time-series figures plot.
func Resample(series []float64, n int) []float64 {
	if n <= 0 || len(series) == 0 {
		return nil
	}
	if n >= len(series) {
		out := make([]float64, len(series))
		copy(out, series)
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(series) / n
		hi := (i + 1) * len(series) / n
		if hi <= lo {
			hi = lo + 1
		}
		out[i] = Mean(series[lo:hi])
	}
	return out
}

// contourShades maps normalized intensity to ASCII, darkest to
// brightest — the harness's stand-in for Fig 1's contour shading.
var contourShades = []byte(" .:-=+*#%@")

// RenderGrid renders a performance surface as an ASCII contour plot.
// rows are labelled by rowLabel(i), columns by colLabels; intensity is
// normalized to the grid's maximum (the paper normalizes each phase's
// contour to its own optimum).
func RenderGrid(grid [][]float64, rowLabel func(int) string, colLabels []string) string {
	max := 0.0
	for _, row := range grid {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	for i := len(grid) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%8s |", rowLabel(i))
		for _, v := range grid[i] {
			shade := byte(' ')
			if max > 0 {
				idx := int(v / max * float64(len(contourShades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(contourShades) {
					idx = len(contourShades) - 1
				}
				shade = contourShades[idx]
			}
			fmt.Fprintf(&b, " %c%c ", shade, shade)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s +", "")
	for range colLabels {
		b.WriteString("----")
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%8s  ", "")
	for _, l := range colLabels {
		fmt.Fprintf(&b, "%4s", l)
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderSeries renders one or more aligned series as an ASCII chart of
// the given height, with a legend. Series are drawn with distinct
// marks; values are normalized to the combined range.
func RenderSeries(names []string, series [][]float64, height int) string {
	if len(series) == 0 || height < 2 {
		return ""
	}
	width := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s) > width {
			width = len(s)
		}
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if width == 0 || math.IsInf(lo, 1) {
		return ""
	}
	if hi == lo {
		hi = lo + 1
	}
	marks := []byte("o+x*#@")
	rows := make([][]byte, height)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for x, v := range s {
			y := int((v-lo)/(hi-lo)*float64(height-1) + 0.5)
			rows[height-1-y][x] = mark
		}
	}
	var b strings.Builder
	for i, row := range rows {
		val := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%10.3g |%s\n", val, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	legend := make([]string, 0, len(names))
	for i, n := range names {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[i%len(marks)], n))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}
