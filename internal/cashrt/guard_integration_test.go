package cashrt

import (
	"math"
	"testing"

	"cash/internal/alloc"
	"cash/internal/cost"
	"cash/internal/guard"
	"cash/internal/qlearn"
	"cash/internal/vcore"
)

func TestNewRejectsNonsense(t *testing.T) {
	cases := []struct {
		name   string
		target float64
		model  cost.Model
		opts   Options
	}{
		{"nan target", math.NaN(), cost.Default(), Options{}},
		{"inf target", math.Inf(1), cost.Default(), Options{}},
		{"negative target", -0.5, cost.Default(), Options{}},
		{"nan margin", 0.5, cost.Default(), Options{Margin: math.NaN()}},
		{"inf margin", 0.5, cost.Default(), Options{Margin: math.Inf(1)}},
		{"negative probe period", 0.5, cost.Default(), Options{ProbePeriod: -1}},
		{"bad guard style", 0.5, cost.Default(), Options{GuardStyle: 17}},
		{"nan slice price", 0.5, cost.Model{SliceHour: math.NaN()}, Options{}},
		{"negative bank price", 0.5, cost.Model{BankHour: -1}, Options{}},
		{"nan alpha", 0.5, cost.Default(), Options{Alpha: math.NaN()}},
		{"nan epsilon", 0.5, cost.Default(), Options{Epsilon: math.NaN()}},
		{"nan process var", 0.5, cost.Default(), Options{ProcessVar: math.NaN()}},
		{"nan measure var", 0.5, cost.Default(), Options{MeasureVar: math.NaN()}},
	}
	for _, c := range cases {
		if _, err := New(c.target, c.model, c.opts); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

// TestBackoffCapBoundary is the regression test for the expansion
// backoff at its cap: repeated denials must walk the exact capped
// doubling sequence and then stay pinned at the cap — no overflow, no
// runaway — for arbitrarily many further denials.
func TestBackoffCapBoundary(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1})
	deny := []alloc.Observation{{
		Config: vcore.Config{Slices: 1, L2KB: 64}, Degraded: true, Cycles: 1,
	}}
	want := []int64{1, 2, 4, 8, 16, 32, 32, 32}
	for i, w := range want {
		r.observeDegradation(deny)
		if r.backoffLen != w {
			t.Fatalf("denial %d: backoffLen = %d, want %d", i+1, r.backoffLen, w)
		}
		// The window elapses and the retry is denied again.
		r.backoffLeft = 0
		r.retrying = true
	}
	for i := 0; i < 10_000; i++ {
		r.observeDegradation(deny)
		r.backoffLeft = 0
		r.retrying = true
	}
	if r.backoffLen != maxExpandBackoff {
		t.Fatalf("after 10k denials backoffLen = %d, want pinned at %d", r.backoffLen, maxExpandBackoff)
	}
	if r.Backoffs != int64(len(want))+10_000 {
		t.Fatalf("Backoffs = %d, want %d", r.Backoffs, len(want)+10_000)
	}
}

func TestStateCheckCleanOnHealthyRun(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1, Guardrails: true})
	plant := func(c vcore.Config) float64 { return 0.2 * qlearn.Prior(c) }
	drive(t, r, plant, 30, 100_000)
	if err := r.StateCheck(); err != nil {
		t.Fatalf("healthy guarded run failed StateCheck: %v", err)
	}
	if trips := r.GuardStats().Trips(); trips != 0 {
		t.Errorf("healthy run tripped guardrails %d times: %+v", trips, r.GuardStats())
	}
}

// TestGuardrailsRepairInjectedCorruption is the repair property the
// chaos soak relies on: after adversarial state injection into the
// filter, the controller and the Q-table, one guarded epoch restores a
// clean StateCheck.
func TestGuardrailsRepairInjectedCorruption(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1, Guardrails: true})
	plant := func(c vcore.Config) float64 { return 0.2 * qlearn.Prior(c) }
	drive(t, r, plant, 10, 100_000)

	r.Estimator().Inject(math.NaN(), math.Inf(1))
	r.Controller().Inject(math.NaN())
	r.Optimizer().PokeQ(vcore.Min(), math.NaN())
	if err := r.StateCheck(); err == nil {
		t.Fatal("injection did not corrupt state — test is vacuous")
	}

	drive(t, r, plant, 2, 100_000)
	if err := r.StateCheck(); err != nil {
		t.Fatalf("guarded runtime still corrupt after repair epochs: %v", err)
	}
	s := r.GuardStats()
	if s.KalmanNaNResets == 0 {
		t.Errorf("Kalman watchdog never fired: %+v", s)
	}
	if s.ControllerResets == 0 {
		t.Errorf("controller sanity clamp never fired: %+v", s)
	}
	if s.QTableQuarantined == 0 {
		t.Errorf("Q-table validator never fired: %+v", s)
	}
}

// TestWithoutGuardrailsCorruptionPersists demonstrates the violated
// invariant that motivates the subsystem: with guardrails off the same
// injection leaves NaN in runtime state indefinitely.
func TestWithoutGuardrailsCorruptionPersists(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1})
	plant := func(c vcore.Config) float64 { return 0.2 * qlearn.Prior(c) }
	drive(t, r, plant, 10, 100_000)
	r.Optimizer().PokeQ(vcore.Min(), math.NaN())
	drive(t, r, plant, 5, 100_000)
	if err := r.StateCheck(); err == nil {
		t.Fatal("unguarded runtime cleaned NaN out of the Q-table by itself — guard-off baseline no longer demonstrates the hazard")
	}
}

// TestBreakerPinsAndRecovers drives a plant through an impossible phase
// (QoS physically unreachable) into an easy one, checking the breaker
// trips to the safe configuration, bounds the violation streak at K,
// and re-enters optimization after the cooldown.
func TestBreakerPinsAndRecovers(t *testing.T) {
	gcfg := guard.Config{BreakerK: 4, BreakerCooldown: 2}
	r := MustNew(0.5, cost.Default(), Options{Seed: 1, Guardrails: true, Guard: gcfg})
	impossible := true
	plant := func(c vcore.Config) float64 {
		if impossible {
			return 0.001 * qlearn.Prior(c)
		}
		return 0.2 * qlearn.Prior(c)
	}
	drive(t, r, plant, 20, 100_000)
	if !r.GuardPinned() {
		t.Fatal("breaker did not pin during the impossible phase")
	}
	s := r.GuardStats()
	if s.BreakerTrips == 0 {
		t.Fatalf("no breaker trips recorded: %+v", s)
	}
	if s.MaxViolationStreak > int64(gcfg.BreakerK) {
		t.Fatalf("violation streak %d exceeds breaker threshold %d", s.MaxViolationStreak, gcfg.BreakerK)
	}
	// While pinned, the plan is the safe statically-provisioned config.
	plan := r.Decide(nil, 100_000)
	if len(plan.Steps) != 1 || plan.Steps[0].Config != r.Optimizer().Largest() {
		t.Fatalf("pinned plan = %+v, want the largest configuration", plan)
	}

	impossible = false
	drive(t, r, plant, 10, 100_000)
	if r.GuardPinned() {
		t.Fatal("breaker did not recover after the easy phase returned")
	}
	if got := r.GuardStats().BreakerRecoveries; got == 0 {
		t.Fatalf("BreakerRecoveries = %d, want >= 1", got)
	}
}

// TestGuardedRunStaysDeterministic: two identical guarded runs produce
// identical plans and identical stats.
func TestGuardedRunStaysDeterministic(t *testing.T) {
	run := func() (guard.Stats, alloc.Plan) {
		r := MustNew(0.5, cost.Default(), Options{Seed: 7, Guardrails: true})
		plant := func(c vcore.Config) float64 { return 0.15 * qlearn.Prior(c) }
		drive(t, r, plant, 25, 100_000)
		return r.GuardStats(), r.Decide(nil, 100_000)
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	if len(p1.Steps) != len(p2.Steps) {
		t.Fatalf("plans diverged: %+v vs %+v", p1, p2)
	}
	for i := range p1.Steps {
		if p1.Steps[i] != p2.Steps[i] {
			t.Fatalf("plan step %d diverged: %+v vs %+v", i, p1.Steps[i], p2.Steps[i])
		}
	}
}
