package cashrt

import (
	"sort"

	"cash/internal/cost"
	"cash/internal/vcore"
)

// NewConvex builds the convex-optimization baseline of §II-B and §VI-C:
// the same feedback controller and Kalman estimator as CASH, but the
// speedup model is *static* — calibrated offline to the application's
// average-case behaviour and then forced concave in cost, because a
// convex optimizer cannot represent local optima. No online learning
// and no exploration happen; the model never adapts to phases.
//
// avgSpeedup gives the application's whole-run average speedup for each
// configuration (relative to the minimal configuration); it typically
// comes from the oracle's characterisation, which is the most generous
// possible calibration for this baseline.
func NewConvex(target float64, model cost.Model, avgSpeedup func(vcore.Config) float64) (*Runtime, error) {
	r, err := New(target, model, Options{})
	if err != nil {
		return nil, err
	}
	r.SetName("ConvexOptimization")
	r.opt.SetRelativeModel(concaveEnvelope(r.opt.Configs(), model, avgSpeedup))
	return r, nil
}

// concaveEnvelope maps every configuration to the upper concave
// envelope (in cost) of the calibration points. Configurations off the
// envelope inherit the envelope's value at their cost, so the
// optimizer's over/under search behaves exactly like a convex method:
// it can only ever trade along the hull.
func concaveEnvelope(cfgs []vcore.Config, model cost.Model, avgSpeedup func(vcore.Config) float64) func(vcore.Config) float64 {
	type pt struct {
		rate, s float64
	}
	pts := make([]pt, 0, len(cfgs))
	for _, c := range cfgs {
		pts = append(pts, pt{rate: model.Rate(c), s: avgSpeedup(c)})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].rate < pts[j].rate })

	// Upper concave envelope via a monotone-chain scan, then make it
	// non-decreasing (a convex model assumes more resources never hurt).
	var hull []pt
	for _, p := range pts {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// b is under the chord a→p: drop it.
			if (b.s-a.s)*(p.rate-a.rate) <= (p.s-a.s)*(b.rate-a.rate) {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, p)
	}
	for i := 1; i < len(hull); i++ {
		if hull[i].s < hull[i-1].s {
			hull[i].s = hull[i-1].s
		}
	}

	eval := func(rate float64) float64 {
		if rate <= hull[0].rate {
			return hull[0].s
		}
		for i := 1; i < len(hull); i++ {
			if rate <= hull[i].rate {
				a, b := hull[i-1], hull[i]
				f := (rate - a.rate) / (b.rate - a.rate)
				return a.s + f*(b.s-a.s)
			}
		}
		return hull[len(hull)-1].s
	}
	return func(c vcore.Config) float64 { return eval(model.Rate(c)) }
}

// BigLittle returns the coarse-grain heterogeneous machine of §VI-E:
// the big core is the largest configuration needed to meet every
// application's QoS (8 Slices, 4MB L2); the little core is the most
// cost-efficient configuration on average (1 Slice, 128KB L2).
func BigLittle() (big, little vcore.Config) {
	return vcore.Config{Slices: 8, L2KB: 4096}, vcore.Config{Slices: 1, L2KB: 128}
}

// NewCoarseAdaptive builds the CoarseGrain,adaptive point of §VI-E:
// the full CASH runtime, but restricted to shifting between the big
// and little core types.
func NewCoarseAdaptive(target float64, model cost.Model, seed uint64) (*Runtime, error) {
	big, little := BigLittle()
	r, err := New(target, model, Options{Configs: []vcore.Config{little, big}, Seed: seed})
	if err != nil {
		return nil, err
	}
	r.SetName("CoarseGrain,adaptive")
	return r, nil
}
