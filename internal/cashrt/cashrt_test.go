package cashrt

import (
	"strings"
	"testing"

	"cash/internal/alloc"
	"cash/internal/cost"
	"cash/internal/qlearn"
	"cash/internal/vcore"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, cost.Default(), Options{}); err == nil {
		t.Error("zero target must fail")
	}
	r := MustNew(0.5, cost.Default(), Options{})
	if r.Name() != "CASH" {
		t.Errorf("Name = %q", r.Name())
	}
	if !strings.Contains(r.String(), "CASH") {
		t.Errorf("String = %q", r.String())
	}
}

func TestBootstrapPlan(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1})
	plan := r.Decide(nil, 100_000)
	if len(plan.Steps) == 0 {
		t.Fatal("first quantum must produce a plan")
	}
	var total int64
	for _, s := range plan.Steps {
		if s.MaxCycles <= 0 && s.TargetInstrs <= 0 {
			t.Errorf("useless step: %+v", s)
		}
		if !s.Idle {
			total += s.MaxCycles
		}
	}
	if total <= 0 {
		t.Error("plan must run something")
	}
	if r.Iterations() != 1 {
		t.Errorf("Iterations = %d", r.Iterations())
	}
}

// drive runs the runtime against a synthetic plant where config c
// delivers qos[c] exactly, returning the final quantum's observations.
func drive(t *testing.T, r *Runtime, qos func(vcore.Config) float64, quanta int, tau int64) []alloc.Observation {
	t.Helper()
	var prev []alloc.Observation
	for i := 0; i < quanta; i++ {
		plan := r.Decide(prev, tau)
		prev = prev[:0]
		remaining := tau
		for _, s := range plan.Steps {
			if remaining <= 0 || s.MaxCycles <= 0 {
				continue
			}
			c := s.MaxCycles
			if c > remaining {
				c = remaining
			}
			ob := alloc.Observation{Config: s.Config, Cycles: c, Idle: s.Idle, Probe: s.Probe}
			if !s.Idle {
				q := qos(s.Config)
				instrs := int64(q * float64(c))
				if s.TargetInstrs > 0 && instrs > s.TargetInstrs {
					instrs = s.TargetInstrs
					c = int64(float64(instrs) / q)
					ob.Cycles = c
				}
				ob.Instrs = instrs
				ob.QoS = q
			}
			remaining -= c
			prev = append(prev, ob)
		}
	}
	return prev
}

func TestConvergesToTargetOnStaticPlant(t *testing.T) {
	target := 0.5
	r := MustNew(target, cost.Default(), Options{Seed: 1})
	// Plant: QoS grows with resources, exactly the prior's shape scaled
	// to base 0.2.
	plant := func(c vcore.Config) float64 { return 0.2 * qlearn.Prior(c) }

	// After convergence the last quantum must deliver at least the
	// target (with its margin) on aggregate.
	last := drive(t, r, plant, 30, 100_000)
	var instrs, cycles int64
	for _, ob := range last {
		instrs += ob.Instrs
		cycles += ob.Cycles
	}
	if cycles == 0 {
		t.Fatal("no work scheduled")
	}
	q := float64(instrs) / float64(cycles)
	if q < target*0.95 {
		t.Errorf("after 30 quanta the runtime delivers %.3f, want >= %.3f", q, target*0.95)
	}
	if q > target*1.6 {
		t.Errorf("gross over-delivery (%.3f) wastes money", q)
	}
}

func TestSingleConfigOption(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1, SingleConfig: true})
	plant := func(c vcore.Config) float64 { return 0.2 * qlearn.Prior(c) }
	drive(t, r, plant, 5, 100_000)
	plan := r.Decide(nil, 100_000)
	if len(plan.Steps) != 1 {
		t.Errorf("SingleConfig plans must have one step, got %d", len(plan.Steps))
	}
}

func TestGuardCommittedEscalates(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1, GuardStyle: GuardCommitted})
	// Plant that delivers almost nothing: persistent misses.
	plant := func(c vcore.Config) float64 { return 0.01 }
	drive(t, r, plant, 8, 100_000)
	if r.Recoveries == 0 {
		t.Error("persistent shortfall must trigger the guard")
	}
	plan := r.Decide(nil, 100_000)
	if len(plan.Steps) != 1 || plan.Steps[0].Config != r.Optimizer().Largest() {
		t.Errorf("guard mode must park at the largest configuration, got %+v", plan.Steps)
	}
}

func TestGuardOffByDefault(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 1})
	plant := func(c vcore.Config) float64 { return 0.01 }
	drive(t, r, plant, 8, 100_000)
	if r.Recoveries != 0 {
		t.Errorf("default guard style is off; Recoveries = %d", r.Recoveries)
	}
}

func TestProbePeriodEmitsProbes(t *testing.T) {
	r := MustNew(0.3, cost.Default(), Options{Seed: 1, ProbePeriod: 1})
	// A plant where mid-size configurations are needed, so race+idle
	// schedules have cheaper configurations left to probe.
	plant := func(c vcore.Config) float64 { return 0.1 * qlearn.Prior(c) }
	probes := 0
	var prev []alloc.Observation
	for i := 0; i < 12; i++ {
		plan := r.Decide(prev, 100_000)
		prev = prev[:0]
		for _, s := range plan.Steps {
			if s.Probe {
				probes++
			}
			q := plant(s.Config)
			instrs := int64(q * 100_000)
			if s.TargetInstrs > 0 && instrs > s.TargetInstrs {
				instrs = s.TargetInstrs
			}
			prev = append(prev, alloc.Observation{
				Config: s.Config, Cycles: 50_000, Instrs: instrs,
				QoS: q, Idle: s.Idle, Probe: s.Probe,
			})
		}
	}
	if probes == 0 {
		t.Error("ProbePeriod=1 should emit idle-tail probes")
	}
}

func TestCoarseAdaptiveRestriction(t *testing.T) {
	r, err := NewCoarseAdaptive(0.4, cost.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "CoarseGrain,adaptive" {
		t.Errorf("Name = %q", r.Name())
	}
	big, little := BigLittle()
	plant := func(c vcore.Config) float64 {
		if c == big {
			return 0.8
		}
		return 0.2
	}
	var prev []alloc.Observation
	for i := 0; i < 15; i++ {
		plan := r.Decide(prev, 100_000)
		prev = prev[:0]
		for _, s := range plan.Steps {
			if s.Config != big && s.Config != little {
				t.Fatalf("coarse allocator used %s, outside {%s,%s}", s.Config, big, little)
			}
			q := plant(s.Config)
			prev = append(prev, alloc.Observation{
				Config: s.Config, Cycles: 50_000,
				Instrs: int64(q * 50_000), QoS: q, Idle: s.Idle, Probe: s.Probe,
			})
		}
	}
}

func TestBigLittle(t *testing.T) {
	big, little := BigLittle()
	if big != (vcore.Config{Slices: 8, L2KB: 4096}) {
		t.Errorf("big = %s, want 8s/4096KB (§VI-E)", big)
	}
	if little != (vcore.Config{Slices: 1, L2KB: 128}) {
		t.Errorf("little = %s, want 1s/128KB (§VI-E)", little)
	}
}

func TestConvexModelIsConcaveAlongCost(t *testing.T) {
	r, err := NewConvex(0.5, cost.Default(), func(c vcore.Config) float64 {
		// A bumpy, non-convex calibration: the hull must smooth it.
		v := qlearn.Prior(c)
		if c.Slices%2 == 0 {
			v *= 0.6
		}
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "ConvexOptimization" {
		t.Errorf("Name = %q", r.Name())
	}
	model := cost.Default()
	cfgs := model.CheapestFirst()
	opt := r.Optimizer()
	// The installed model must be non-decreasing along cost (a convex
	// optimizer assumes more resources never hurt).
	prevQ := -1.0
	base := 0.2
	for _, c := range cfgs {
		q := opt.QoSEstimate(c, base)
		if q < prevQ*(1-1e-9) {
			t.Fatalf("hull model decreases along cost at %s: %.4f after %.4f", c, q, prevQ)
		}
		if q > prevQ {
			prevQ = q
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := MustNew(1, cost.Default(), Options{})
	if r.opts.Alpha != qlearn.DefaultAlpha || r.opts.Epsilon != qlearn.DefaultEpsilon {
		t.Error("learning defaults not applied")
	}
	if r.opts.Margin != 0.08 {
		t.Errorf("margin default = %v", r.opts.Margin)
	}
	r2 := MustNew(1, cost.Default(), Options{Margin: -1})
	if r2.opts.Margin != 0 {
		t.Error("negative margin must disable headroom")
	}
	if r2.ctrl.Target != 1 {
		t.Errorf("disabled margin: controller target = %v", r2.ctrl.Target)
	}
}

// TestDegradationBackoff drives the runtime against a synthetic fabric
// whose capacity is capped below what the QoS target needs. The runtime
// must clamp its plans to the granted capacity between retries, and the
// retries must thin out exponentially instead of hammering the fabric
// every quantum.
func TestDegradationBackoff(t *testing.T) {
	r := MustNew(0.8, cost.Default(), Options{Seed: 1})
	tau := int64(100_000)
	capCfg := vcore.Config{Slices: 2, L2KB: 256}

	exceeds := func(c vcore.Config) bool {
		return c.Slices > capCfg.Slices || c.L2KB > capCfg.L2KB
	}
	// Synthetic plant: QoS scales with slices, so 0.8 needs 3+ slices —
	// permanently beyond the cap.
	respond := func(plan alloc.Plan) (obs []alloc.Observation, denied bool) {
		for _, s := range plan.Steps {
			if s.Idle || s.MaxCycles <= 0 {
				continue
			}
			cfg, deniedStep := s.Config, false
			if exceeds(cfg) {
				cfg, deniedStep, denied = capCfg, true, true
			}
			qos := 0.3 * float64(cfg.Slices)
			obs = append(obs, alloc.Observation{
				Config: cfg, Cycles: s.MaxCycles,
				Instrs: int64(qos * float64(s.MaxCycles)),
				QoS:    qos, Degraded: deniedStep,
			})
		}
		return obs, denied
	}

	var prev []alloc.Observation
	denials, clampedViolations := 0, 0
	for q := 0; q < 40; q++ {
		plan := r.Decide(prev, tau)
		var d bool
		prev, d = respond(plan)
		if d {
			denials++
		}
		// While a backoff window is open the plan must stay within the cap.
		if !d && r.backoffLeft > 0 {
			for _, s := range plan.Steps {
				if exceeds(s.Config) {
					clampedViolations++
				}
			}
		}
	}
	if denials == 0 {
		t.Fatal("the plant never denied anything; the scenario is wrong")
	}
	if denials > 10 {
		t.Errorf("%d denials in 40 quanta: backoff is not thinning retries", denials)
	}
	if r.Backoffs < 3 {
		t.Errorf("only %d backoff windows entered", r.Backoffs)
	}
	if clampedViolations != 0 {
		t.Errorf("%d plan steps exceeded the cap inside a backoff window", clampedViolations)
	}

	// Capacity returns: the next retry is granted and the clamp must lift.
	capCfg = vcore.Max()
	sawBig := false
	for q := 0; q < maxExpandBackoff+5; q++ {
		plan := r.Decide(prev, tau)
		prev, _ = respond(plan)
		for _, s := range plan.Steps {
			if s.Config.Slices > 2 {
				sawBig = true
			}
		}
	}
	if !sawBig {
		t.Error("after capacity returned the runtime never expanded again")
	}
	if r.backoffLen != 0 {
		t.Errorf("backoff state not reset after a granted retry: len=%d", r.backoffLen)
	}
}

// TestNoBackoffWithoutDegradation pins the zero-fault path: a runtime
// that never sees a Degraded observation must never clamp.
func TestNoBackoffWithoutDegradation(t *testing.T) {
	r := MustNew(0.5, cost.Default(), Options{Seed: 3})
	var prev []alloc.Observation
	for q := 0; q < 20; q++ {
		plan := r.Decide(prev, 100_000)
		prev = prev[:0]
		for _, s := range plan.Steps {
			if s.Idle || s.MaxCycles <= 0 {
				continue
			}
			qos := 0.2 * float64(s.Config.Slices)
			prev = append(prev, alloc.Observation{
				Config: s.Config, Cycles: s.MaxCycles,
				Instrs: int64(qos * float64(s.MaxCycles)), QoS: qos,
			})
		}
	}
	if r.Backoffs != 0 || r.backoffLen != 0 || r.retrying {
		t.Errorf("backoff engaged without degradation: %d windows", r.Backoffs)
	}
}
