// Package cashrt is the CASH runtime (§IV, Algorithm 1): the
// co-designed software half of the system. Once per control quantum it
//
//  1. reads the delivered QoS q(t) (synthesized from per-Slice
//     performance-counter samples taken over the runtime interface
//     network),
//  2. updates the Kalman estimate b̂(t) of the application's base speed
//     (phase detection, §IV-B),
//  3. runs the deadbeat controller to produce a speedup demand s(t)
//     (QoS guarantee, §IV-A),
//  4. asks the LearningOptimizer for the minimal-cost two-configuration
//     schedule achieving s(t) (cost minimization, §IV-C), and
//  5. folds the quantum's per-configuration QoS observations back into
//     the learned speedups (Eqn 7).
//
// Every step is O(1) in the number of configurations visited per
// quantum, which is what makes the runtime cheap enough to execute on a
// single Slice (§VI-A).
package cashrt

import (
	"fmt"
	"math"

	"cash/internal/alloc"
	"cash/internal/control"
	"cash/internal/cost"
	"cash/internal/guard"
	"cash/internal/qlearn"
	"cash/internal/vcore"
)

// Options tune the runtime; zero values select the paper's design.
// The Disable*/Single* switches exist for the ablation benchmarks.
type Options struct {
	// Alpha is the Q-learning rate (default qlearn.DefaultAlpha).
	Alpha float64
	// Epsilon is the exploration probability (default qlearn.DefaultEpsilon).
	Epsilon float64
	// ProcessVar, MeasureVar parameterize the Kalman filter. Defaults:
	// 0.02 and 0.01 (relative QoS units).
	ProcessVar, MeasureVar float64
	// Margin is the control headroom: the controller regulates to
	// Target*(1+Margin) so that quantum-level noise around the setpoint
	// rarely crosses the QoS floor (default 0.08). Negative disables.
	Margin float64
	// Seed makes exploration deterministic.
	Seed uint64
	// Configs restricts the configuration space (nil = full space);
	// used by the coarse-grain comparison.
	Configs []vcore.Config

	// GuardStyle selects the QoS-guard behaviour: 0 = off (default; the
	// controller, snap learning and table rescaling recover QoS),
	// GuardCommitted parks at the largest configuration until the
	// target holds, GuardDemand escalates the demand for one quantum.
	GuardStyle int
	// ProbePeriod enables idle-tail probing of cheaper configurations
	// every N quanta (0 = disabled, the default).
	ProbePeriod int
	// NoSnap disables snap-on-contradiction learning (ablation).
	NoSnap bool
	// RescaleMode couples the Kalman estimate to the learned table:
	// 0 = deflate-only (default), 1 = both directions, 2 = off.
	RescaleMode int

	// Guardrails enables the runtime guardrail subsystem (package
	// guard): the Kalman watchdog, controller sanity clamp, Q-table
	// validator, thrash rate limiter and top-level QoS circuit breaker.
	Guardrails bool
	// Guard tunes the guardrail thresholds; zero fields select the
	// guard package defaults. Ignored unless Guardrails is set.
	Guard guard.Config

	// DisableLearning freezes speedup estimates at their initial model
	// (ablation: what the convex baseline effectively does).
	DisableLearning bool
	// DisableKalman replaces phase tracking with the first-sample base
	// speed (ablation).
	DisableKalman bool
	// SingleConfig forces the whole quantum into the `over`
	// configuration instead of the two-configuration schedule (ablation).
	SingleConfig bool
}

// Runtime implements alloc.Allocator with the CASH control loop.
type Runtime struct {
	ctrl  *control.Controller
	est   *control.Estimator
	opt   *qlearn.Optimizer
	guard *guard.Guard // nil unless Options.Guardrails
	opts  Options

	name        string
	lastSpeedup float64 // the controller's demand s(t)
	lastPlanned float64 // the schedule's expected speedup (≤ demand at saturation)
	iterations  int64
	frozenBase  float64

	// QoS guard state: consecutive quanta below/above the raw target,
	// whether the guard holds the largest configuration, and how many
	// escalations have fired.
	misses     int
	guardMode  bool
	guardHits  int
	Recoveries int64

	// probeTick schedules idle-tail probes of cheaper configurations.
	probeTick int64

	// Degradation backoff state: after the fabric denies an expansion
	// (or a fault shrinks the virtual core), the runtime caps its plans
	// at the granted capacity and retries the larger request with capped
	// exponential backoff instead of re-requesting every quantum.
	capCfg      vcore.Config
	backoffLen  int64
	backoffLeft int64
	retrying    bool
	// Backoffs counts backoff windows entered (for reports and tests).
	Backoffs int64
}

// maxExpandBackoff caps the exponential retry interval, in quanta: even
// under a long-lived capacity loss the runtime re-probes the fabric at
// least every 32 quanta, so a repair is discovered promptly without
// hammering the allocator every quantum.
const maxExpandBackoff = 32

// probeEvery is how often an idle tail is converted into a probe of the
// most promising cheaper configuration. Probing costs a little rent but
// is QoS-safe (the quantum's obligation is already met) and is what
// lets the runtime discover that a phase has become easier — without
// it, stale low estimates would keep the system parked on expensive
// configurations after a heavy phase ends.
// Guard styles.
const (
	GuardOff = iota
	GuardCommitted
	GuardDemand
)

// guardAfterMisses is how many consecutive under-target quanta trigger
// the QoS guard: the next quantum runs the best-estimate configuration
// outright, re-learning its QoS, instead of continuing to edge up
// through configurations whose estimates are stale for the new phase.
const guardAfterMisses = 2

// New builds a runtime for the given QoS target and pricing model.
// Nonsensical inputs — NaN or non-positive targets, NaN tuning knobs,
// negative probe periods, invalid price vectors — are rejected here:
// every one of them would otherwise disappear into the control loop
// (NaN fails all comparisons) and surface quanta later as an
// inexplicable scheduling pathology.
func New(target float64, model cost.Model, opts Options) (*Runtime, error) {
	if !(target > 0) || math.IsInf(target, 0) {
		return nil, fmt.Errorf("cashrt: QoS target %v must be positive and finite", target)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if math.IsNaN(opts.Margin) || math.IsInf(opts.Margin, 0) {
		return nil, fmt.Errorf("cashrt: margin %v must be finite", opts.Margin)
	}
	if opts.ProbePeriod < 0 {
		return nil, fmt.Errorf("cashrt: probe period %d must be non-negative", opts.ProbePeriod)
	}
	if opts.GuardStyle < GuardOff || opts.GuardStyle > GuardDemand {
		return nil, fmt.Errorf("cashrt: unknown guard style %d", opts.GuardStyle)
	}
	if opts.Alpha == 0 {
		opts.Alpha = qlearn.DefaultAlpha
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = qlearn.DefaultEpsilon
	}
	if opts.ProcessVar == 0 {
		opts.ProcessVar = 0.02
	}
	if opts.MeasureVar == 0 {
		opts.MeasureVar = 0.01
	}
	if opts.Margin == 0 {
		opts.Margin = 0.08
	}
	if opts.Margin < 0 {
		opts.Margin = 0
	}
	ctrl, err := control.NewController(target * (1 + opts.Margin))
	if err != nil {
		return nil, err
	}
	est, err := control.NewEstimator(opts.ProcessVar, opts.MeasureVar)
	if err != nil {
		return nil, err
	}
	cfgs := opts.Configs
	if cfgs == nil {
		cfgs = vcore.Space()
	}
	opt, err := qlearn.NewRestricted(model, cfgs, opts.Alpha, opts.Epsilon, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.DisableLearning {
		// Freeze the optimizer at its smooth prior shape (the ablation
		// equivalent of a convex model that was never calibrated).
		opt.SetRelativeModel(qlearn.Prior)
	}
	opt.NoSnap = opts.NoSnap
	r := &Runtime{ctrl: ctrl, est: est, opt: opt, opts: opts, name: "CASH"}
	if opts.Guardrails {
		r.guard = guard.New(opts.Guard)
	}
	return r, nil
}

// MustNew is New for statically-valid arguments.
func MustNew(target float64, model cost.Model, opts Options) *Runtime {
	r, err := New(target, model, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// SetName overrides the reported policy name (the convex baseline and
// ablations reuse this runtime with different wiring).
func (r *Runtime) SetName(name string) { r.name = name }

// Name implements alloc.Allocator.
func (r *Runtime) Name() string { return r.name }

// Optimizer exposes the learning optimizer (for installing static
// models and for tests).
func (r *Runtime) Optimizer() *qlearn.Optimizer { return r.opt }

// Estimator exposes the Kalman filter (for tests).
func (r *Runtime) Estimator() *control.Estimator { return r.est }

// Controller exposes the deadbeat controller (for the chaos harness's
// fault injection and for tests).
func (r *Runtime) Controller() *control.Controller { return r.ctrl }

// GuardStats returns the guardrail trip counters (zero when guardrails
// are disabled).
func (r *Runtime) GuardStats() guard.Stats {
	if r.guard == nil {
		return guard.Stats{}
	}
	return r.guard.Stats()
}

// GuardPinned reports whether the QoS circuit breaker currently pins
// the safe configuration.
func (r *Runtime) GuardPinned() bool { return r.guard != nil && r.guard.Pinned() }

// StateCheck scans every piece of mutable control-loop state for
// non-finite values and reports the first violation found. The chaos
// soak calls it after every quantum: with guardrails on it must never
// fail, because each watchdog repairs its component before the state
// escapes the epoch.
func (r *Runtime) StateCheck() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"kalman estimate", r.est.Estimate()},
		{"kalman error variance", r.est.ErrVar()},
		{"controller speedup", r.ctrl.Speedup()},
		{"last demand", r.lastSpeedup},
		{"last planned speedup", r.lastPlanned},
	}
	for _, c := range checks {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 {
			return fmt.Errorf("cashrt: %s is %v", c.name, c.v)
		}
	}
	if n := r.opt.InvalidEntries(0); n > 0 {
		return fmt.Errorf("cashrt: Q-table holds %d non-finite entries", n)
	}
	return nil
}

// Iterations returns how many control iterations have run.
func (r *Runtime) Iterations() int64 { return r.iterations }

// Speedup returns the most recent control signal s(t).
func (r *Runtime) Speedup() float64 { return r.lastSpeedup }

// lastTailQoS extracts the quantum's tail-latency signal: the last
// observation carrying one (the serving engine publishes TailQoS on
// executed steps; batch runs never set it, leaving the tail breaker
// inert).
func lastTailQoS(prev []alloc.Observation) (float64, bool) {
	for i := len(prev) - 1; i >= 0; i-- {
		if prev[i].TailQoS > 0 {
			return prev[i].TailQoS, true
		}
	}
	return 0, false
}

// Decide implements alloc.Allocator: one iteration of Algorithm 1.
func (r *Runtime) Decide(prev []alloc.Observation, tau int64) alloc.Plan {
	r.iterations++
	r.observeDegradation(prev)

	// Read current QoS: aggregate over the whole previous quantum,
	// including idle time (the customer experiences wall-clock QoS).
	// Probe tails replace idle time; their bonus work is excluded so
	// the controller regulates the *intended* service level — counting
	// it would make the integrator cut the next quantum's demand below
	// the target.
	var instrs, cycles int64
	for _, ob := range prev {
		if !ob.Probe {
			instrs += ob.Instrs
		}
		cycles += ob.Cycles
	}
	var measured float64
	if cycles > 0 {
		measured = float64(instrs) / float64(cycles)
	}

	// Guardrails, stage 1: validate the learned table before anything
	// reads it, and note the filter state before this epoch's update so
	// the watchdog can judge the innovation afterwards.
	if r.guard != nil {
		r.guard.BeginEpoch()
		r.guard.CheckQTable(r.opt)
	}

	// Update the base-speed estimate from the speedup we applied, and
	// shift the learned QoS table by the same factor: a phase change
	// detected by the estimator instantly rescales every
	// configuration's expectation (Eqn 7's normalization by q̂0).
	// The coupling is asymmetric: when the base drops (phase got
	// harder) the whole table deflates at once, because stale optimism
	// violates QoS. When the base rises, estimates are left alone —
	// inflating them would resurrect configurations that observations
	// just falsified; idle-tail probes discover cheapening instead.
	prevBase := r.est.Estimate()
	base := r.updateBase(measured, cycles > 0)
	// Guardrails, stage 2: the Kalman watchdog judges the post-update
	// filter (NaN/Inf state, covariance blow-up, sustained innovation
	// divergence). A reset re-seeds the filter from the next sample; the
	// rescale below is skipped for this epoch because the reset estimate
	// carries no phase information.
	if r.guard != nil {
		applied := r.lastPlanned
		if applied <= 0 {
			applied = 1
		}
		if r.guard.CheckKalman(r.est, prevBase, applied, measured, cycles > 0) {
			base = r.est.Estimate()
		}
	}
	if prevBase > 0 && base > 0 {
		switch {
		case r.opts.RescaleMode == 0 && base < prevBase:
			r.opt.Rescale(base / prevBase)
		case r.opts.RescaleMode == 1 && base != prevBase:
			r.opt.Rescale(base / prevBase)
		}
	}

	// Probe steps double as scale anchors: a probe's measured QoS over
	// its prior shape is a direct reading of the application's current
	// base speed, restoring identifiability when the control loop sits
	// exactly on target (where the quantum-level Kalman innovation is
	// zero by construction).
	for _, ob := range prev {
		if ob.Probe && ob.Cycles > 0 && ob.QoS > 0 {
			r.est.Update(qlearn.Prior(ob.Config), ob.QoS)
		}
	}

	// Learn from the per-configuration observations (before scheduling,
	// so this quantum's decision uses this quantum's evidence). Idle
	// sub-steps carry no information about any configuration, and steps
	// that began with an L2 flush reflect cold-cache behaviour, not the
	// configuration's steady state — the timestamped samples let the
	// runtime discard them (§III-B2).
	for _, ob := range prev {
		if !ob.Idle && !ob.L2Changed && ob.Cycles > 0 {
			r.opt.Observe(ob.Config, ob.QoS)
		}
	}
	// Tell the optimizer which L2 the virtual core currently holds, so
	// its schedules keep the cache warm unless switching clearly pays.
	// Probe tails are not real tenancy and do not move stickiness.
	for i := len(prev) - 1; i >= 0; i-- {
		if !prev[i].Idle && !prev[i].Probe {
			r.opt.StickyL2 = prev[i].Config.L2KB
			break
		}
	}

	// Controller: speedup demand, clamped to what the architecture can
	// deliver (anti-windup: an unachievable demand would otherwise
	// integrate without bound while the plant saturates).
	// Guardrails, stage 3: a corrupted integrator is reset before it is
	// consulted; the Update below then re-seeds the speedup from the
	// target exactly as at start-up.
	if r.guard != nil {
		r.guard.CheckController(r.ctrl)
	}
	speedup := r.ctrl.Update(measured, base)
	demand := speedup * base
	if base <= 0 {
		demand = r.ctrl.Target
	}
	if limit := r.opt.MaxQoS(base) * 1.25; limit > 0 && demand > limit {
		demand = limit
		if base > 0 {
			r.ctrl.Clamp(limit / base)
		}
	}
	r.lastSpeedup = speedup

	// QoS guard: persistent shortfall means the learned estimates are
	// stale for the current phase. Escalate to the largest
	// configuration and *stay there* until the target is met for two
	// consecutive quanta — a big configuration's worth only shows once
	// its cache warms, so single-quantum visits would measure cold
	// performance, falsify the estimate, and wander off. While parked,
	// observations (including the warm ones that matter) keep flowing
	// into the optimizer, so on exit the estimates are current.
	rawTarget := r.ctrl.Target / (1 + r.opts.Margin)

	// Guardrails, stage 4: the top-level circuit breakers. The mean
	// breaker opens after K consecutive epochs of violating mean QoS;
	// the tail breaker opens on a windowed count of tail-SLO-violating
	// epochs (serving runs publish a TailQoS signal — latency budget
	// over p99 — which catches overload regimes where per-quantum means
	// look fine or are absent entirely because nothing completes). With
	// either breaker open, optimization is abandoned outright and a
	// safe statically-provisioned configuration (the largest) is
	// pinned; optimization re-enters only after that breaker's cooldown
	// of met epochs. Both state machines tick every epoch so they trip
	// and recover independently. The pinned plan bypasses the thrash
	// limiter — safety outranks smoothness — but still respects fabric
	// capacity backoff.
	if r.guard != nil {
		meanPinned := r.guard.BreakerTick(measured, rawTarget, cycles > 0)
		tailMeasured, haveTail := lastTailQoS(prev)
		tailPinned := r.guard.TailTick(tailMeasured, 1, haveTail)
		if meanPinned || tailPinned {
			big := r.opt.Largest()
			if base > 0 {
				r.lastPlanned = r.opt.QoSEstimate(big, base) / base
			} else {
				r.lastPlanned = 1
			}
			r.lastSpeedup = r.lastPlanned
			return r.applyBackoff(alloc.Plan{Steps: []alloc.Step{{Config: big, MaxCycles: tau}}})
		}
	}

	if cycles > 0 {
		if measured < rawTarget {
			r.misses++
			r.guardHits = 0
		} else {
			r.misses = 0
			r.guardHits++
		}
	}
	if r.guardMode && r.guardHits >= 2 {
		r.guardMode = false
	}
	if !r.guardMode && r.misses >= guardAfterMisses && r.opts.GuardStyle != GuardOff {
		r.guardMode = true
		r.misses = 0
		r.Recoveries++
	}
	if r.guardMode {
		if r.opts.GuardStyle == GuardDemand {
			// Demand-only guard: ask for the best estimate this quantum.
			r.guardMode = false
			demand = r.opt.MaxQoS(base)
		} else {
			big := r.opt.Largest()
			if base > 0 {
				r.lastPlanned = r.opt.QoSEstimate(big, base) / base
			} else {
				r.lastPlanned = 1
			}
			r.lastSpeedup = r.lastPlanned
			return r.applyBackoff(alloc.Plan{Steps: []alloc.Step{{Config: big, MaxCycles: tau}}})
		}
	}

	// Optimizer: minimal-cost schedule for the absolute demand.
	sched := r.opt.Schedule(demand, base, tau)
	if base > 0 {
		r.lastPlanned = sched.ExpectedQoS / base
	} else {
		r.lastPlanned = 1
	}
	p := r.planFrom(sched, tau, demand, base)
	// Guardrails, stage 5: deadbeat-oscillation detection. If the
	// planned configuration stream thrashes above the windowed rate
	// threshold, resizes are rate-limited until the thrash subsides.
	if r.guard != nil && len(p.Steps) > 0 {
		p = r.guard.LimitPlan(p, p.Steps[0].Config)
	}
	return r.applyBackoff(p)
}

// observeDegradation updates the expansion-backoff state from the
// previous quantum. A Degraded observation means the fabric could not
// provide the configuration the runtime asked for; its Config field is
// the capacity that was actually granted. Rather than re-requesting the
// denied expansion every quantum, the runtime caps its plans at the
// granted capacity for an exponentially growing number of quanta
// (1, 2, 4, … up to maxExpandBackoff) between retries.
func (r *Runtime) observeDegradation(prev []alloc.Observation) {
	degraded := false
	for _, ob := range prev {
		if ob.Degraded {
			degraded = true
			r.capCfg = ob.Config
		}
	}
	switch {
	case degraded && (r.retrying || r.backoffLen == 0):
		// A fresh denial, or a retry that was denied again: back off
		// (exponentially, capped).
		switch {
		case r.backoffLen == 0:
			r.backoffLen = 1
		case r.backoffLen < maxExpandBackoff:
			// Doubling only below the cap keeps the arithmetic overflow-
			// free no matter how many denials accumulate over a long run.
			r.backoffLen *= 2
			if r.backoffLen > maxExpandBackoff {
				r.backoffLen = maxExpandBackoff
			}
		}
		r.backoffLeft = r.backoffLen
		r.Backoffs++
	case degraded:
		// Capacity shrank further while we were already capped (a new
		// fault): restart the current wait at the new, smaller cap.
		r.backoffLeft = r.backoffLen
	case r.retrying:
		// The retry was granted: capacity is back.
		r.backoffLen, r.backoffLeft = 0, 0
		r.capCfg = vcore.Config{}
	case r.backoffLeft > 0:
		r.backoffLeft--
	}
	r.retrying = false
}

// applyBackoff clamps a plan to the granted capacity while a backoff
// window is open. When the window has elapsed, the plan is released
// unclamped as the retry; observeDegradation learns next quantum
// whether the fabric granted it.
func (r *Runtime) applyBackoff(p alloc.Plan) alloc.Plan {
	if r.backoffLen == 0 {
		return p
	}
	exceeds := false
	for _, s := range p.Steps {
		if s.Config.Slices > r.capCfg.Slices || s.Config.L2KB > r.capCfg.L2KB {
			exceeds = true
			break
		}
	}
	if !exceeds {
		return p
	}
	if r.backoffLeft <= 0 {
		r.retrying = true
		return p
	}
	for i := range p.Steps {
		if p.Steps[i].Config.Slices > r.capCfg.Slices {
			p.Steps[i].Config.Slices = r.capCfg.Slices
		}
		if p.Steps[i].Config.L2KB > r.capCfg.L2KB {
			p.Steps[i].Config.L2KB = r.capCfg.L2KB
		}
	}
	return p
}

// updateBase advances the Kalman filter (or the ablated fixed estimate)
// and returns b̂(t).
func (r *Runtime) updateBase(measured float64, haveSample bool) float64 {
	if !haveSample {
		return r.est.Estimate()
	}
	applied := r.lastPlanned
	if applied <= 0 {
		// First quantum ran on whatever initial configuration the
		// engine chose; approximate its speedup as 1 (the base).
		applied = 1
	}
	if r.opts.DisableKalman {
		if r.frozenBase == 0 && measured > 0 {
			r.frozenBase = measured / applied
		}
		return r.frozenBase
	}
	return r.est.Update(applied, measured)
}

// planFrom converts an optimizer schedule into engine steps.
func (r *Runtime) planFrom(s qlearn.Schedule, tau int64, demand, base float64) alloc.Plan {
	if r.opts.SingleConfig {
		return alloc.Plan{Steps: []alloc.Step{{Config: s.Over, MaxCycles: tau}}}
	}
	if s.Idle {
		// Race the quantum's QoS obligation, then idle. Racing to the
		// observed instruction count (rather than the planned cycle
		// split) makes the quantum robust to estimate error.
		obligation := int64(s.ExpectedQoS * float64(tau) * 1.02)
		steps := []alloc.Step{{Config: s.Over, MaxCycles: tau, TargetInstrs: obligation}}
		r.probeTick++
		if r.opts.ProbePeriod > 0 && r.probeTick%int64(r.opts.ProbePeriod) == 0 {
			// Probe only within the current L2 size: a cross-L2 probe
			// would flush the warm cache the racing configuration paid
			// for. Smaller L2 sizes are reached through the scale
			// anchor the probe provides (see Decide) plus the
			// hysteresis comparison in the optimizer.
			filter := s.Over.L2KB
			cheaper := r.opt.Rate(s.Over)
			if cand, ok := r.opt.ProbeCandidate(demand, base, filter, cheaper); ok && cand != s.Over {
				// Spend the tail measuring a cheaper configuration
				// instead of idling.
				steps = append(steps, alloc.Step{Config: cand, MaxCycles: tau, Probe: true})
				return alloc.Plan{Steps: steps}
			}
		}
		steps = append(steps, alloc.Step{Config: s.Over, MaxCycles: tau, Idle: true})
		return alloc.Plan{Steps: steps}
	}
	var steps []alloc.Step
	if s.TOver > 0 {
		steps = append(steps, alloc.Step{Config: s.Over, MaxCycles: s.TOver})
	}
	if s.TUnder > 0 {
		steps = append(steps, alloc.Step{Config: s.Under, MaxCycles: s.TUnder})
	}
	if len(steps) == 0 {
		steps = []alloc.Step{{Config: s.Over, MaxCycles: tau}}
	}
	return alloc.Plan{Steps: steps}
}

// String describes the runtime's wiring, for reports.
func (r *Runtime) String() string {
	return fmt.Sprintf("%s(alpha=%.2f eps=%.2f learn=%v kalman=%v twoCfg=%v)",
		r.name, r.opts.Alpha, r.opts.Epsilon,
		!r.opts.DisableLearning, !r.opts.DisableKalman, !r.opts.SingleConfig)
}
