package slice

import (
	"fmt"

	"cash/internal/isa"
)

// RenameTable is the per-Slice half of CASH's two-level register
// renaming (§III-B1). Architectural registers live in a *global
// logical* namespace mapped across all Slices of a virtual core; each
// Slice maps the globals it touches onto its own local register file.
//
// A Slice's mapping of a global is either the *primary* copy (this
// Slice executed the most recent write) or a *reader* copy (the value
// was forwarded here for a source operand). The distinction drives the
// register-flush protocol of Fig 5: when a Slice leaves a virtual core,
// only its primary copies must be pushed to the survivors, so the flush
// is bounded by the number of global registers.
type RenameTable struct {
	// local[i] describes local register i.
	local []localReg
	// slotOf[g] is the local register holding global g, or -1.
	slotOf [isa.NumGlobalRegs]int16
	// version[g] is a monotonically increasing write version for
	// global g, used by tests to check value conservation across
	// reconfiguration. The primary copy always has the latest version
	// it observed.
	clock int

	// Spills counts primary copies evicted for capacity — the rename
	// table's pathological case, where the architectural value must be
	// written back to the global namespace's memory backing.
	Spills int64

	// OnSpill, if set, is called with the global register whose primary
	// copy was evicted, so the owner (the virtual core) can re-home the
	// architectural value to the namespace's memory backing.
	OnSpill func(g isa.Reg)
}

// allocScanCap bounds the victim search so renaming stays O(1) on the
// simulator's hot path; beyond the cap, the entry under the clock hand
// is spilled even if primary.
const allocScanCap = 8

type localReg struct {
	global  isa.Reg
	valid   bool
	primary bool
	version uint64
}

// Init sizes the local register file. It must be called before use.
func (t *RenameTable) Init(localRegs int) {
	t.local = make([]localReg, localRegs)
	for g := range t.slotOf {
		t.slotOf[g] = -1
	}
	t.clock = 0
	t.Spills = 0
}

// Reset drops all mappings but keeps the configured size.
func (t *RenameTable) Reset() {
	for i := range t.local {
		t.local[i] = localReg{}
	}
	for g := range t.slotOf {
		t.slotOf[g] = -1
	}
	t.clock = 0
}

// Lookup reports whether global g is mapped here, and if so whether
// this Slice holds the primary copy and which version it has.
func (t *RenameTable) Lookup(g isa.Reg) (primary bool, version uint64, ok bool) {
	s := t.slotOf[g]
	if s < 0 {
		return false, 0, false
	}
	lr := t.local[s]
	return lr.primary, lr.version, true
}

// Mapped returns the number of globals currently mapped.
func (t *RenameTable) Mapped() int {
	n := 0
	for _, lr := range t.local {
		if lr.valid {
			n++
		}
	}
	return n
}

// Write records that this Slice executed a write of global g producing
// the given version, making it the primary holder. It returns true if
// a new local register had to be allocated (i.e. g was not mapped).
func (t *RenameTable) Write(g isa.Reg, version uint64) (allocated bool) {
	if g == isa.RegZero {
		return false
	}
	if s := t.slotOf[g]; s >= 0 {
		t.local[s].primary = true
		t.local[s].version = version
		return false
	}
	s := t.alloc()
	t.local[s] = localReg{global: g, valid: true, primary: true, version: version}
	t.slotOf[g] = int16(s)
	return true
}

// CopyIn records a reader copy of global g at the given version
// (forwarded over the operand network). A Slice that already holds g
// keeps its state; in particular a primary copy is never demoted by a
// read.
func (t *RenameTable) CopyIn(g isa.Reg, version uint64) {
	if g == isa.RegZero {
		return
	}
	if s := t.slotOf[g]; s >= 0 {
		if !t.local[s].primary && version > t.local[s].version {
			t.local[s].version = version
		}
		return
	}
	s := t.alloc()
	t.local[s] = localReg{global: g, valid: true, primary: false, version: version}
	t.slotOf[g] = int16(s)
}

// ReadIn records that this Slice consumed global g as a source
// operand: a Slice that already maps g keeps its state untouched (a
// read never demotes a primary or moves a version), otherwise a reader
// copy at the given version is allocated. It reports whether g was
// already mapped — the caller uses that to decide whether the value had
// to travel. This is Lookup+CopyIn fused into a single map probe for
// the simulator's per-source hot path.
func (t *RenameTable) ReadIn(g isa.Reg, version uint64) (held bool) {
	if g == isa.RegZero {
		return true
	}
	if t.slotOf[g] >= 0 {
		return true
	}
	s := t.alloc()
	t.local[s] = localReg{global: g, valid: true, primary: false, version: version}
	t.slotOf[g] = int16(s)
	return false
}

// Demote marks this Slice's copy of g as a reader copy (the primary
// moved elsewhere because another Slice wrote g).
func (t *RenameTable) Demote(g isa.Reg) {
	if s := t.slotOf[g]; s >= 0 {
		t.local[s].primary = false
	}
}

// Drop removes the mapping for g entirely.
func (t *RenameTable) Drop(g isa.Reg) {
	if s := t.slotOf[g]; s >= 0 {
		t.local[s] = localReg{}
		t.slotOf[g] = -1
	}
}

// Primaries appends the globals for which this Slice holds the primary
// copy (with versions) to dst and returns it. This is the flush set of
// Fig 5: the values that must be pushed to survivors when this Slice
// leaves its virtual core.
func (t *RenameTable) Primaries(dst []PrimaryCopy) []PrimaryCopy {
	for _, lr := range t.local {
		if lr.valid && lr.primary {
			dst = append(dst, PrimaryCopy{Global: lr.global, Version: lr.version})
		}
	}
	return dst
}

// PrimaryCopy is one (register, version) pair in a flush set.
type PrimaryCopy struct {
	Global  isa.Reg
	Version uint64
}

// alloc finds a free local register, evicting if necessary. Reader
// copies are preferred victims; evicting a primary is counted as a
// spill (the architectural value must round-trip through memory). The
// scan is bounded (allocScanCap) so allocation is O(1).
func (t *RenameTable) alloc() int {
	n := len(t.local)
	if n == 0 {
		panic(fmt.Sprintf("slice: rename table used before Init (%d locals)", n))
	}
	scan := n
	if scan > allocScanCap {
		scan = allocScanCap
	}
	// Prefer a free slot or a reader copy within the scan window.
	// The clock hand stays in [0, n), so wraparound is a compare
	// instead of a modulo — this is the simulator's hot path.
	s := t.clock
	for i := 0; i < scan; i++ {
		if !t.local[s].valid || !t.local[s].primary {
			t.evict(s)
			t.clock = s + 1
			if t.clock == n {
				t.clock = 0
			}
			return s
		}
		s++
		if s == n {
			s = 0
		}
	}
	// Window full of primaries: spill the one under the clock hand.
	s = t.clock
	t.Spills++
	t.evict(s)
	t.clock = s + 1
	if t.clock == n {
		t.clock = 0
	}
	return s
}

func (t *RenameTable) evict(s int) {
	if !t.local[s].valid {
		return
	}
	if t.local[s].primary && t.OnSpill != nil {
		t.OnSpill(t.local[s].global)
	}
	t.slotOf[t.local[s].global] = -1
	t.local[s] = localReg{}
}
