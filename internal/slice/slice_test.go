package slice

import (
	"testing"
	"testing/quick"

	"cash/internal/isa"
	"cash/internal/noc"
)

func TestDefaultConfigIsTableI(t *testing.T) {
	c := DefaultConfig()
	if c.FetchWidth != 2 || c.FunctionalUnits != 2 || c.PhysRegs != 128 ||
		c.LocalRegs != 64 || c.IssueWindow != 32 || c.ROBSize != 64 ||
		c.StoreBufferSize != 8 || c.MaxInflightLoads != 8 || c.MemDelay != 100 {
		t.Errorf("default config deviates from Table I: %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	c := DefaultConfig()
	c.IssueWindow = c.ROBSize + 1
	if err := c.Validate(); err == nil {
		t.Error("issue window larger than ROB must fail")
	}
	c = DefaultConfig()
	c.FetchWidth = 0
	if err := c.Validate(); err == nil {
		t.Error("zero fetch width must fail")
	}
}

func TestNewSlice(t *testing.T) {
	s, err := New(3, noc.Coord{X: 0, Y: 3}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.L1I == nil || s.L1D == nil {
		t.Fatal("slices need L1 caches")
	}
	sample := s.ReadCounters(500)
	if sample.SliceID != 3 || sample.Timestamp != 500 {
		t.Errorf("sample identity wrong: %+v", sample)
	}
	if s.PipelineFlush() != ExpandCycles {
		t.Errorf("pipeline flush = %d, want %d", s.PipelineFlush(), ExpandCycles)
	}
}

func TestRenamePrimarySemantics(t *testing.T) {
	var rt RenameTable
	rt.Init(64)
	rt.Write(5, 1)
	if p, v, ok := rt.Lookup(5); !ok || !p || v != 1 {
		t.Fatalf("after Write: primary=%v version=%d ok=%v", p, v, ok)
	}
	rt.Demote(5)
	if p, _, _ := rt.Lookup(5); p {
		t.Error("Demote should clear the primary bit")
	}
	rt.CopyIn(9, 7)
	if p, v, ok := rt.Lookup(9); !ok || p || v != 7 {
		t.Errorf("reader copy wrong: primary=%v version=%d ok=%v", p, v, ok)
	}
	rt.Drop(9)
	if _, _, ok := rt.Lookup(9); ok {
		t.Error("Drop should remove the mapping")
	}
}

func TestRenameCopyInKeepsPrimary(t *testing.T) {
	var rt RenameTable
	rt.Init(64)
	rt.Write(5, 3)
	rt.CopyIn(5, 2) // stale forwarded value must not demote the primary
	if p, v, _ := rt.Lookup(5); !p || v != 3 {
		t.Errorf("primary lost by CopyIn: primary=%v version=%d", p, v)
	}
}

func TestRenamePrimariesFlushSet(t *testing.T) {
	var rt RenameTable
	rt.Init(64)
	for g := isa.Reg(1); g <= 10; g++ {
		rt.Write(g, uint64(g))
	}
	rt.CopyIn(20, 1)
	ps := rt.Primaries(nil)
	if len(ps) != 10 {
		t.Fatalf("flush set has %d entries, want 10", len(ps))
	}
	for _, pc := range ps {
		if uint64(pc.Global) != pc.Version {
			t.Errorf("version mismatch for r%d: %d", pc.Global, pc.Version)
		}
	}
}

func TestRenameCapacityAndSpill(t *testing.T) {
	var rt RenameTable
	rt.Init(8)
	spilled := map[isa.Reg]bool{}
	rt.OnSpill = func(g isa.Reg) { spilled[g] = true }
	for g := isa.Reg(1); g <= 20; g++ {
		rt.Write(g, uint64(g))
	}
	if rt.Mapped() > 8 {
		t.Fatalf("mapped %d exceeds 8 local registers", rt.Mapped())
	}
	if rt.Spills == 0 || len(spilled) == 0 {
		t.Error("writing 20 primaries into 8 locals must spill")
	}
}

func TestRenameEvictionPrefersReaders(t *testing.T) {
	var rt RenameTable
	rt.Init(4)
	rt.Write(1, 1)
	rt.Write(2, 2)
	rt.CopyIn(10, 1)
	rt.CopyIn(11, 1)
	// A new write must evict a reader copy, not a primary.
	rt.Write(3, 3)
	if _, _, ok := rt.Lookup(1); !ok {
		t.Error("primary r1 evicted while readers were available")
	}
	if _, _, ok := rt.Lookup(2); !ok {
		t.Error("primary r2 evicted while readers were available")
	}
	if rt.Spills != 0 {
		t.Errorf("spills = %d, want 0", rt.Spills)
	}
}

func TestRenameMappedBoundQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		var rt RenameTable
		rt.Init(16)
		ver := uint64(0)
		for _, op := range ops {
			g := isa.Reg(op%127) + 1
			ver++
			if op%3 == 0 {
				rt.CopyIn(g, ver)
			} else {
				rt.Write(g, ver)
			}
		}
		return rt.Mapped() <= 16 && len(rt.Primaries(nil)) <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRenameReset(t *testing.T) {
	var rt RenameTable
	rt.Init(8)
	rt.Write(1, 1)
	rt.Reset()
	if rt.Mapped() != 0 {
		t.Error("Reset should drop all mappings")
	}
	if _, _, ok := rt.Lookup(1); ok {
		t.Error("mapping survived Reset")
	}
}
