// Package slice models the basic unit of computation in the CASH
// architecture: the Slice — a simple out-of-order core with one ALU,
// one load-store unit, two-wide fetch and a small L1 (Fig 4, Table I).
// Multiple Slices compose into a virtual core (package vcore); the
// cycle-level timing rules live in package ssim.
package slice

import (
	"fmt"

	"cash/internal/mem"
	"cash/internal/noc"
	"cash/internal/perf"
)

// Config is the base Slice configuration of Table I.
type Config struct {
	// FetchWidth is instructions fetched per cycle per Slice.
	FetchWidth int
	// FunctionalUnits is FUs per Slice (1 ALU + 1 LSU).
	FunctionalUnits int
	// PhysRegs is the global physical register count.
	PhysRegs int
	// LocalRegs is the per-Slice local register file size.
	LocalRegs int
	// IssueWindow is the per-Slice issue window size.
	IssueWindow int
	// ROBSize is the per-Slice reorder buffer size.
	ROBSize int
	// StoreBufferSize is the per-Slice store buffer depth.
	StoreBufferSize int
	// MaxInflightLoads bounds outstanding loads per Slice.
	MaxInflightLoads int
	// MemDelay is the main-memory latency in cycles.
	MemDelay int
	// MispredictPenalty is the pipeline refill cost of a branch
	// mispredict on a single Slice; fetch across a multi-Slice virtual
	// core must additionally re-synchronize (see ssim).
	MispredictPenalty int
}

// DefaultConfig returns Table I.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        2,
		FunctionalUnits:   2,
		PhysRegs:          128,
		LocalRegs:         64,
		IssueWindow:       32,
		ROBSize:           64,
		StoreBufferSize:   8,
		MaxInflightLoads:  8,
		MemDelay:          mem.MemDelay,
		MispredictPenalty: 10,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.FunctionalUnits <= 0 || c.PhysRegs <= 0 ||
		c.LocalRegs <= 0 || c.IssueWindow <= 0 || c.ROBSize <= 0 ||
		c.StoreBufferSize <= 0 || c.MaxInflightLoads <= 0 || c.MemDelay <= 0 ||
		c.MispredictPenalty < 0 {
		return fmt.Errorf("slice: non-positive field in config %+v", c)
	}
	if c.IssueWindow > c.ROBSize {
		return fmt.Errorf("slice: issue window %d exceeds ROB %d", c.IssueWindow, c.ROBSize)
	}
	return nil
}

// Slice is one tile's worth of compute: its identity and position in
// the fabric, its private L1 caches, its local rename state, and its
// performance counters.
type Slice struct {
	ID  noc.NodeID
	Pos noc.Coord
	Cfg Config

	L1I *mem.Cache
	L1D *mem.Cache

	Rename RenameTable

	Counters perf.Counters
}

// New builds a Slice with fresh L1s and rename state.
func New(id noc.NodeID, pos noc.Coord, cfg Config) (*Slice, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Slice{ID: id, Pos: pos, Cfg: cfg}
	var err error
	if s.L1I, err = mem.NewCache(mem.L1SizeKB, mem.L1Assoc); err != nil {
		return nil, fmt.Errorf("slice %d L1I: %w", id, err)
	}
	if s.L1D, err = mem.NewCache(mem.L1SizeKB, mem.L1Assoc); err != nil {
		return nil, fmt.Errorf("slice %d L1D: %w", id, err)
	}
	s.Rename.Init(cfg.LocalRegs)
	return s, nil
}

// MustNew is New for statically-valid configurations.
func MustNew(id noc.NodeID, pos noc.Coord, cfg Config) *Slice {
	s, err := New(id, pos, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Reset returns the Slice to its just-constructed state: L1 contents
// and statistics wiped, rename mappings dropped, spill and performance
// counters zeroed. The configured geometry and the OnSpill wiring
// survive, so an owning virtual core can recycle the Slice for a fresh
// run without reallocating tag arrays or rename storage.
func (s *Slice) Reset() {
	s.L1I.Reset()
	s.L1D.Reset()
	s.Rename.Reset()
	s.Rename.Spills = 0
	s.Counters = perf.Counters{}
}

// ReadCounters implements perf.CounterSource.
func (s *Slice) ReadCounters(atCycle int64) perf.Sample {
	c := s.Counters
	c.Cycles = atCycle
	return perf.Sample{SliceID: int(s.ID), Timestamp: atCycle, Counters: c}
}

// PipelineFlush models joining a virtual core (EXPAND): the in-flight
// window is squashed. It returns the stall in cycles (§VI-A: ~15).
func (s *Slice) PipelineFlush() int64 { return ExpandCycles }

// Reconfiguration overheads from §VI-A.
const (
	// ExpandCycles is the cost of Slice expansion: a pipeline flush.
	ExpandCycles = 15
	// MaxRegisterFlushCycles bounds Slice contraction's extra cost:
	// at most one operand-network push per global logical register
	// mapped on the departing Slice, bounded by the local register
	// file size (§VI-A: "at most 64 cycles more than expansion").
	MaxRegisterFlushCycles = 64
)
