// Package vcore implements CASH virtual cores: dynamically composed
// groups of Slices and L2 cache banks (§III). It owns the configuration
// space the runtime optimizes over, the two-level register state spanning
// Slices, and the reconfiguration engine — the register-flush protocol of
// Fig 5 and the L2 flush — with the overheads quantified in §VI-A.
package vcore

import (
	"fmt"

	"cash/internal/mem"
)

// Configuration-space bounds (§II-A: virtual cores of 1 to 8 Slices and
// 64KB to 8MB of L2 in power-of-two steps).
const (
	MinSlices = 1
	MaxSlices = 8
	MinL2KB   = 64
	MaxL2KB   = 8192
)

// Config is one point in the virtual-core configuration space.
type Config struct {
	// Slices is the number of composed Slices (1..8).
	Slices int
	// L2KB is the total L2 capacity in KB (64..8192, power of two).
	L2KB int
}

// String renders "3s/512KB".
func (c Config) String() string { return fmt.Sprintf("%ds/%dKB", c.Slices, c.L2KB) }

// Banks returns the number of 64KB L2 banks the configuration uses.
func (c Config) Banks() int { return c.L2KB / mem.L2BankKB }

// Valid reports whether the configuration lies inside the space.
func (c Config) Valid() bool { return c.Validate() == nil }

// Validate reports why a configuration is outside the space.
func (c Config) Validate() error {
	if c.Slices < MinSlices || c.Slices > MaxSlices {
		return fmt.Errorf("vcore: slice count %d outside [%d,%d]", c.Slices, MinSlices, MaxSlices)
	}
	if c.L2KB < MinL2KB || c.L2KB > MaxL2KB {
		return fmt.Errorf("vcore: L2 size %dKB outside [%d,%d]", c.L2KB, MinL2KB, MaxL2KB)
	}
	if c.L2KB&(c.L2KB-1) != 0 {
		return fmt.Errorf("vcore: L2 size %dKB is not a power of two", c.L2KB)
	}
	return nil
}

// Space returns the full 8×8 configuration grid in canonical order:
// slices ascending, then L2 ascending.
func Space() []Config {
	var out []Config
	for s := MinSlices; s <= MaxSlices; s++ {
		for l2 := MinL2KB; l2 <= MaxL2KB; l2 *= 2 {
			out = append(out, Config{Slices: s, L2KB: l2})
		}
	}
	return out
}

// L2Steps returns the valid L2 sizes in ascending order.
func L2Steps() []int {
	var out []int
	for l2 := MinL2KB; l2 <= MaxL2KB; l2 *= 2 {
		out = append(out, l2)
	}
	return out
}

// Index returns the configuration's position in Space(), or -1.
func (c Config) Index() int {
	if !c.Valid() {
		return -1
	}
	l2Idx := 0
	for l2 := MinL2KB; l2 < c.L2KB; l2 *= 2 {
		l2Idx++
	}
	return (c.Slices-1)*len(L2Steps()) + l2Idx
}

// Min returns the smallest configuration (1 Slice, 64KB) — the paper's
// pricing anchor and the controller's base-speed reference.
func Min() Config { return Config{Slices: MinSlices, L2KB: MinL2KB} }

// Max returns the largest configuration (8 Slices, 8MB).
func Max() Config { return Config{Slices: MaxSlices, L2KB: MaxL2KB} }
