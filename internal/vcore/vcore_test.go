package vcore

import (
	"testing"
	"testing/quick"

	"cash/internal/isa"
	"cash/internal/mem"
	"cash/internal/slice"
)

func TestConfigSpace(t *testing.T) {
	space := Space()
	if len(space) != 64 {
		t.Fatalf("space has %d points, want 64 (8 slices × 8 L2 sizes)", len(space))
	}
	seen := map[Config]bool{}
	for i, c := range space {
		if err := c.Validate(); err != nil {
			t.Errorf("space[%d] invalid: %v", i, err)
		}
		if seen[c] {
			t.Errorf("duplicate configuration %s", c)
		}
		seen[c] = true
		if c.Index() != i {
			t.Errorf("%s: Index() = %d, want %d", c, c.Index(), i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Slices: 0, L2KB: 64},
		{Slices: 9, L2KB: 64},
		{Slices: 1, L2KB: 32},
		{Slices: 1, L2KB: 16384},
		{Slices: 1, L2KB: 96},
	}
	for _, c := range bad {
		if c.Valid() {
			t.Errorf("%s should be invalid", c)
		}
	}
	if (Config{Slices: 3, L2KB: 256}).Index() < 0 {
		t.Error("valid config must index into the space")
	}
	if (Config{}).Index() != -1 {
		t.Error("invalid config must index to -1")
	}
}

func TestConfigBanksAndString(t *testing.T) {
	c := Config{Slices: 2, L2KB: 512}
	if c.Banks() != 8 {
		t.Errorf("Banks = %d, want 8", c.Banks())
	}
	if c.String() != "2s/512KB" {
		t.Errorf("String = %q", c.String())
	}
	if Min() != (Config{Slices: 1, L2KB: 64}) || Max() != (Config{Slices: 8, L2KB: 8192}) {
		t.Error("Min/Max bounds wrong")
	}
}

func TestExpandCost(t *testing.T) {
	v := MustNew(Config{Slices: 2, L2KB: 128}, slice.DefaultConfig())
	stall, err := v.Reconfigure(Config{Slices: 4, L2KB: 128})
	if err != nil {
		t.Fatal(err)
	}
	if stall != slice.ExpandCycles {
		t.Errorf("expansion stall = %d, want %d (§VI-A)", stall, slice.ExpandCycles)
	}
	if len(v.Slices()) != 4 || v.Config().Slices != 4 {
		t.Error("expansion did not grow the slice set")
	}
}

func TestShrinkCostBounded(t *testing.T) {
	v := MustNew(Config{Slices: 4, L2KB: 128}, slice.DefaultConfig())
	for g := 1; g < isa.NumGlobalRegs; g++ {
		v.RecordWrite(isa.Reg(g), g%4)
	}
	stall, err := v.Reconfigure(Config{Slices: 1, L2KB: 128})
	if err != nil {
		t.Fatal(err)
	}
	max := int64(slice.ExpandCycles + slice.MaxRegisterFlushCycles)
	if stall < slice.ExpandCycles || stall > max {
		t.Errorf("shrink stall = %d, want within [%d,%d] (§VI-A)", stall, slice.ExpandCycles, max)
	}
}

// TestResetMatchesFresh: a virtual core that has executed register
// traffic, cache accesses and reconfigurations must, after Reset, be
// observably identical to a newly built one — cold caches, cleared
// rename state, zero counters — at configurations that reuse retained
// slices and banks as well as ones that grow past them.
func TestResetMatchesFresh(t *testing.T) {
	v := MustNew(Config{Slices: 4, L2KB: 256}, slice.DefaultConfig())
	// Dirty everything: register versions, primaries, caches, stats.
	for g := 1; g <= 60; g++ {
		v.RecordWrite(isa.Reg(g), g%4)
		v.RecordRead(isa.Reg(g), (g+1)%4)
	}
	for a := uint64(0); a < 512*64; a += 64 {
		v.L2().Access(a, true)
		v.Slice(int(a/64)%4).L1D.Access(a, true)
	}
	if _, err := v.Reconfigure(Config{Slices: 6, L2KB: 1024}); err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []Config{{Slices: 2, L2KB: 128}, {Slices: 8, L2KB: 4096}} {
		if err := v.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		fresh := MustNew(cfg, slice.DefaultConfig())
		if v.Config() != fresh.Config() {
			t.Fatalf("config %s vs fresh %s", v.Config(), fresh.Config())
		}
		if v.Stats() != fresh.Stats() {
			t.Errorf("%s: stats %+v vs fresh %+v", cfg, v.Stats(), fresh.Stats())
		}
		for g := 0; g < isa.NumGlobalRegs; g++ {
			reg := isa.Reg(g)
			if v.PrimaryHolder(reg) != fresh.PrimaryHolder(reg) || v.Version(reg) != fresh.Version(reg) {
				t.Fatalf("%s: r%d primary/version (%d,%d) vs fresh (%d,%d)", cfg, g,
					v.PrimaryHolder(reg), v.Version(reg), fresh.PrimaryHolder(reg), fresh.Version(reg))
			}
		}
		// Identical access behaviour: cold caches and matching delays.
		for a := uint64(0); a < 64*64; a += 64 {
			hr, dr, wr := v.L2().Access(a, false)
			hf, df, wf := fresh.L2().Access(a, false)
			if hr != hf || dr != df || wr != wf {
				t.Fatalf("%s: L2 %#x reset (%v,%d,%v) vs fresh (%v,%d,%v)", cfg, a, hr, dr, wr, hf, df, wf)
			}
		}
		for i := 0; i < cfg.Slices; i++ {
			if v.Slice(i).Counters != fresh.Slice(i).Counters {
				t.Errorf("%s: slice %d counters %+v vs fresh %+v", cfg, i,
					v.Slice(i).Counters, fresh.Slice(i).Counters)
			}
			if hit, _ := v.Slice(i).L1D.Access(0x40, false); hit {
				t.Errorf("%s: slice %d L1D retained a line across Reset", cfg, i)
			}
		}
		// Redirty between schedule points so the next Reset works harder.
		for g := 1; g <= 30; g++ {
			v.RecordWrite(isa.Reg(g), g%cfg.Slices)
		}
	}
}

func TestShrinkConservesRegisters(t *testing.T) {
	v := MustNew(Config{Slices: 4, L2KB: 128}, slice.DefaultConfig())
	versions := map[isa.Reg]uint64{}
	for g := 1; g <= 60; g++ {
		reg := isa.Reg(g)
		versions[reg] = v.RecordWrite(reg, g%4)
	}
	if _, err := v.Reconfigure(Config{Slices: 2, L2KB: 128}); err != nil {
		t.Fatal(err)
	}
	for reg, want := range versions {
		holder := v.PrimaryHolder(reg)
		if holder < 0 {
			// Spilled to the memory backing: version must survive.
			if v.Version(reg) != want {
				t.Errorf("r%d spilled with version %d, want %d", reg, v.Version(reg), want)
			}
			continue
		}
		if holder >= 2 {
			t.Errorf("r%d primary on removed slice %d", reg, holder)
			continue
		}
		p, ver, ok := v.Slice(holder).Rename.Lookup(reg)
		if !ok || !p {
			t.Errorf("r%d: survivor %d does not hold the primary copy", reg, holder)
		}
		if ver != want {
			t.Errorf("r%d: version %d after flush, want %d (Fig 5 conservation)", reg, ver, want)
		}
	}
}

func TestShrinkConservationQuick(t *testing.T) {
	f := func(writes []uint16, toRaw uint8) bool {
		v := MustNew(Config{Slices: 8, L2KB: 64}, slice.DefaultConfig())
		latest := map[isa.Reg]uint64{}
		for _, w := range writes {
			g := isa.Reg(w%120) + 1
			latest[g] = v.RecordWrite(g, int(w)%8)
			if w%5 == 0 {
				v.RecordRead(g, int(w/3)%8)
			}
		}
		to := 1 + int(toRaw%7)
		if _, err := v.Reconfigure(Config{Slices: to, L2KB: 64}); err != nil {
			return false
		}
		for g, want := range latest {
			if v.Version(g) != want {
				return false
			}
			if h := v.PrimaryHolder(g); h >= to {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestL2ReconfigureFlushCost(t *testing.T) {
	v := MustNew(Config{Slices: 1, L2KB: 64}, slice.DefaultConfig())
	var dirty int
	for a := uint64(0); a < 32*1024; a += mem.BlockBytes {
		v.L2().Access(a, true)
		dirty++
	}
	stall, err := v.Reconfigure(Config{Slices: 1, L2KB: 256})
	if err != nil {
		t.Fatal(err)
	}
	if want := mem.FlushCycles(dirty); stall != want {
		t.Errorf("L2 stall = %d, want %d (dirty-line flush)", stall, want)
	}
	if v.L2().SizeKB() != 256 {
		t.Errorf("L2 size = %dKB, want 256", v.L2().SizeKB())
	}
}

func TestReconfigureNoop(t *testing.T) {
	cfg := Config{Slices: 2, L2KB: 128}
	v := MustNew(cfg, slice.DefaultConfig())
	stall, err := v.Reconfigure(cfg)
	if err != nil || stall != 0 {
		t.Errorf("no-op reconfigure: stall=%d err=%v", stall, err)
	}
	if _, err := v.Reconfigure(Config{}); err == nil {
		t.Error("invalid target must fail")
	}
}

func TestOperandReadAccounting(t *testing.T) {
	v := MustNew(Config{Slices: 4, L2KB: 64}, slice.DefaultConfig())
	v.RecordWrite(7, 0)
	if hops := v.RecordRead(7, 0); hops != 0 {
		t.Errorf("local read cost %d hops, want 0", hops)
	}
	if hops := v.RecordRead(7, 3); hops != 3 {
		t.Errorf("remote read cost %d hops, want 3 (column layout)", hops)
	}
	// The reader now holds a copy: the next read is free.
	if hops := v.RecordRead(7, 3); hops != 0 {
		t.Errorf("cached read cost %d hops, want 0", hops)
	}
}

func TestWriteDemotesOldPrimary(t *testing.T) {
	v := MustNew(Config{Slices: 2, L2KB: 64}, slice.DefaultConfig())
	v.RecordWrite(5, 0)
	v.RecordWrite(5, 1)
	if v.PrimaryHolder(5) != 1 {
		t.Errorf("primary holder = %d, want 1", v.PrimaryHolder(5))
	}
	if p, _, ok := v.Slice(0).Rename.Lookup(5); ok && p {
		t.Error("old primary must be demoted")
	}
}

func TestCountersSurviveShrink(t *testing.T) {
	v := MustNew(Config{Slices: 4, L2KB: 64}, slice.DefaultConfig())
	for i := 0; i < 4; i++ {
		v.Slice(i).Counters.Committed = 100
	}
	if _, err := v.Reconfigure(Config{Slices: 1, L2KB: 64}); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range v.Slices() {
		total += s.Counters.Committed
	}
	if total != 400 {
		t.Errorf("committed counters after shrink = %d, want 400 (§III-B2 accounting)", total)
	}
}

func TestStatsAccumulate(t *testing.T) {
	v := MustNew(Config{Slices: 1, L2KB: 64}, slice.DefaultConfig())
	v.Reconfigure(Config{Slices: 4, L2KB: 128})
	v.Reconfigure(Config{Slices: 2, L2KB: 64})
	st := v.Stats()
	if st.SliceExpands != 1 || st.SliceShrinks != 1 || st.L2Reconfigs != 2 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.StallCycles <= 0 {
		t.Error("stall cycles should accumulate")
	}
}

func TestL2Steps(t *testing.T) {
	steps := L2Steps()
	if len(steps) != 8 || steps[0] != 64 || steps[7] != 8192 {
		t.Errorf("L2Steps = %v", steps)
	}
}
