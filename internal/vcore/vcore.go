package vcore

import (
	"fmt"

	"cash/internal/isa"
	"cash/internal/mem"
	"cash/internal/noc"
	"cash/internal/slice"
)

// VCore is a live virtual core: a set of Slices, a banked L2, and the
// global-register bookkeeping that spans them. It supports in-place
// reconfiguration with the paper's protocols and costs.
type VCore struct {
	cfg    Config
	sliceC slice.Config

	slices []*slice.Slice
	// all retains every Slice ever built for this core, so shrink/expand
	// cycles and full Resets reuse L1 tag arrays and rename storage
	// instead of reallocating; slices is always all[:activeCount]. A
	// rejoining Slice is wiped first, so retention is invisible to the
	// timing model (a wiped Slice is bit-identical to a fresh one).
	all []*slice.Slice
	l2  *mem.BankedL2

	// Global logical register state (§III-B1): which Slice holds the
	// primary copy of each architectural register, and that register's
	// current write version. -1 means no Slice holds it (value lives in
	// the global namespace's memory backing).
	primary [isa.NumGlobalRegs]int
	version [isa.NumGlobalRegs]uint64
	writes  uint64

	// Cumulative reconfiguration accounting.
	stats ReconfigStats
}

// ReconfigStats records reconfiguration activity and its cost.
type ReconfigStats struct {
	SliceExpands    int64
	SliceShrinks    int64
	L2Reconfigs     int64
	RegisterFlushes int64
	DirtyL2Flushes  int64
	StallCycles     int64
}

// New builds a virtual core in the given configuration with the given
// Slice microarchitecture. Slices are laid out in a column (Fig 3),
// with L2 banks flanking it at the default distances.
func New(cfg Config, sliceCfg slice.Config) (*VCore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sliceCfg.Validate(); err != nil {
		return nil, err
	}
	v := &VCore{cfg: cfg, sliceC: sliceCfg}
	for i := 0; i < cfg.Slices; i++ {
		s, err := slice.New(noc.NodeID(i), noc.Coord{X: 0, Y: i}, sliceCfg)
		if err != nil {
			return nil, err
		}
		v.attachSpillHandler(s, i)
		v.all = append(v.all, s)
	}
	v.slices = v.all
	l2, err := mem.NewBankedL2(cfg.Banks())
	if err != nil {
		return nil, err
	}
	v.l2 = l2
	for g := range v.primary {
		v.primary[g] = -1
	}
	return v, nil
}

// MustNew is New for statically-valid configurations.
func MustNew(cfg Config, sliceCfg slice.Config) *VCore {
	v, err := New(cfg, sliceCfg)
	if err != nil {
		panic(err)
	}
	return v
}

// Reset returns the virtual core to the state New(cfg, sliceCfg) would
// construct — caches cold, rename and global register namespaces empty,
// reconfiguration statistics zeroed — while reusing every retained
// Slice and L2 bank. Pooled simulators recycle a VCore per
// characterisation cell through this instead of rebuilding the whole
// hierarchy.
func (v *VCore) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	for i := 0; i < cfg.Slices; i++ {
		if i < len(v.all) {
			v.all[i].Reset()
		} else {
			s, err := slice.New(noc.NodeID(i), noc.Coord{X: 0, Y: i}, v.sliceC)
			if err != nil {
				return err
			}
			v.attachSpillHandler(s, i)
			v.all = append(v.all, s)
		}
	}
	v.slices = v.all[:cfg.Slices]
	if err := v.l2.Reset(cfg.Banks()); err != nil {
		return err
	}
	for g := range v.primary {
		v.primary[g] = -1
		v.version[g] = 0
	}
	v.writes = 0
	v.stats = ReconfigStats{}
	v.cfg = cfg
	return nil
}

// Config returns the current configuration.
func (v *VCore) Config() Config { return v.cfg }

// Slices returns the live Slices. Callers must not mutate the slice.
func (v *VCore) Slices() []*slice.Slice { return v.slices }

// Slice returns Slice i.
func (v *VCore) Slice(i int) *slice.Slice { return v.slices[i] }

// L2 returns the banked L2.
func (v *VCore) L2() *mem.BankedL2 { return v.l2 }

// Stats returns cumulative reconfiguration statistics.
func (v *VCore) Stats() ReconfigStats { return v.stats }

// SliceDistance returns the operand-network hop count between two
// Slices of this virtual core.
func (v *VCore) SliceDistance(a, b int) int {
	return noc.Manhattan(v.slices[a].Pos, v.slices[b].Pos)
}

// attachSpillHandler re-homes an architectural register to the global
// namespace's memory backing when a Slice's rename table must evict its
// primary copy for capacity.
func (v *VCore) attachSpillHandler(s *slice.Slice, idx int) {
	s.Rename.OnSpill = func(g isa.Reg) {
		if v.primary[g] == idx {
			v.primary[g] = -1
		}
	}
}

// --- Global register protocol -------------------------------------------

// RecordWrite notes that Slice s executed a write of global g. It
// returns the register's new version. Any previous primary holder is
// demoted to a reader copy.
func (v *VCore) RecordWrite(g isa.Reg, s int) uint64 {
	if g == isa.RegZero {
		return 0
	}
	v.writes++
	ver := v.writes
	if old := v.primary[g]; old >= 0 && old != s && old < len(v.slices) {
		v.slices[old].Rename.Demote(g)
	}
	v.primary[g] = s
	v.version[g] = ver
	v.slices[s].Rename.Write(g, ver)
	return ver
}

// RecordRead notes that Slice s needs global g as a source operand.
// It returns the operand-network hop distance the value travels: zero
// when s already holds a copy (or the value has no live producer), else
// the distance from the primary holder. The reader copy is recorded.
func (v *VCore) RecordRead(g isa.Reg, s int) (hops int) {
	if g == isa.RegZero {
		return 0
	}
	if v.slices[s].Rename.ReadIn(g, v.version[g]) {
		return 0
	}
	p := v.primary[g]
	if p < 0 || p >= len(v.slices) || p == s {
		// No live remote producer: either the value predates the
		// current composition (materialized from the global namespace
		// without inter-Slice traffic) or this Slice produced it.
		return 0
	}
	return v.SliceDistance(p, s)
}

// PrimaryHolder returns the Slice index holding global g's primary
// copy, or -1.
func (v *VCore) PrimaryHolder(g isa.Reg) int { return v.primary[g] }

// Version returns global g's current write version.
func (v *VCore) Version(g isa.Reg) uint64 { return v.version[g] }

// --- Reconfiguration ------------------------------------------------------

// Reconfigure transitions the virtual core to a new configuration and
// returns the stall cycles charged to the application (§VI-A). Slice
// and L2 reconfiguration proceed over different networks (operand
// network vs. L2 memory network) and overlap, so the stall is the
// maximum of the two costs.
func (v *VCore) Reconfigure(to Config) (stall int64, err error) {
	if err := to.Validate(); err != nil {
		return 0, err
	}
	if to == v.cfg {
		return 0, nil
	}
	var sliceCost, l2Cost int64
	switch {
	case to.Slices > v.cfg.Slices:
		sliceCost = v.expandSlices(to.Slices)
	case to.Slices < v.cfg.Slices:
		sliceCost, err = v.shrinkSlices(to.Slices)
		if err != nil {
			return 0, err
		}
	}
	if to.L2KB != v.cfg.L2KB {
		l2Cost, err = v.reconfigureL2(to.L2KB)
		if err != nil {
			return 0, err
		}
	}
	stall = sliceCost
	if l2Cost > stall {
		stall = l2Cost
	}
	v.cfg = to
	v.stats.StallCycles += stall
	return stall, nil
}

// expandSlices grows the Slice set. New Slices join cold (empty rename
// state, cold L1s); the existing pipeline is flushed (§VI-A: ~15 cycles).
func (v *VCore) expandSlices(n int) int64 {
	for i := len(v.slices); i < n; i++ {
		if i < len(v.all) {
			// Rejoining a retained Slice: wipe it back to the cold state
			// a freshly-built tile would join with.
			v.all[i].Reset()
		} else {
			s := slice.MustNew(noc.NodeID(i), noc.Coord{X: 0, Y: i}, v.sliceC)
			v.attachSpillHandler(s, i)
			v.all = append(v.all, s)
		}
	}
	v.slices = v.all[:n]
	v.stats.SliceExpands++
	return slice.ExpandCycles
}

// shrinkSlices removes Slices from the top of the column, executing the
// register-flush protocol of Fig 5: every departing Slice pushes the
// globals it is primary for to the surviving Slices over the operand
// network; survivors that already hold a reader copy only promote it.
// The flush cost is bounded by the local register file size.
func (v *VCore) shrinkSlices(n int) (int64, error) {
	if n < 1 {
		return 0, fmt.Errorf("vcore: shrink to %d slices", n)
	}
	maxFlush := 0
	var buf []slice.PrimaryCopy
	for idx := n; idx < len(v.slices); idx++ {
		departing := v.slices[idx]
		buf = departing.Rename.Primaries(buf[:0])
		if len(buf) > maxFlush {
			maxFlush = len(buf)
		}
		for _, pc := range buf {
			v.flushRegister(pc, idx, n)
		}
		// Reader copies on the departing Slice are simply dropped, but
		// its performance counters are folded into a survivor so the
		// virtual core's accounting survives reconfiguration (§III-B2:
		// the runtime's view is synthesized from per-Slice samples).
		v.slices[0].Counters.Add(departing.Counters)
		departing.Rename.Reset()
	}
	v.slices = v.slices[:n]
	// Any primary record still pointing at a removed Slice would be a
	// protocol violation; verify the invariant cheaply.
	for g := range v.primary {
		if v.primary[g] >= n {
			return 0, fmt.Errorf("vcore: register r%d primary on removed slice %d", g, v.primary[g])
		}
	}
	v.stats.SliceShrinks++
	flushCycles := int64(maxFlush)
	if flushCycles > slice.MaxRegisterFlushCycles {
		flushCycles = slice.MaxRegisterFlushCycles
	}
	v.stats.RegisterFlushes += int64(maxFlush)
	return slice.ExpandCycles + flushCycles, nil
}

// flushRegister moves one primary copy from departing Slice idx to a
// survivor (Fig 5). The survivor nearest the departing Slice receives
// the value unless another survivor already holds a copy.
func (v *VCore) flushRegister(pc slice.PrimaryCopy, from, survivors int) {
	g := pc.Global
	// Prefer a survivor that already holds a reader copy: it just
	// promotes, saving a local register (Fig 5 step ❷).
	for s := 0; s < survivors; s++ {
		if _, _, ok := v.slices[s].Rename.Lookup(g); ok {
			v.slices[s].Rename.Write(g, pc.Version)
			v.primary[g] = s
			return
		}
	}
	// Otherwise push to the nearest survivor.
	best, bestDist := 0, int(^uint(0)>>1)
	for s := 0; s < survivors; s++ {
		if d := v.SliceDistance(from, s); d < bestDist {
			best, bestDist = s, d
		}
	}
	v.slices[best].Rename.Write(g, pc.Version)
	v.primary[g] = best
}

// reconfigureL2 resizes the L2, flushing dirty state to memory. The
// stall is the dirty-line flush time; the address-hash reconfiguration
// overlaps with it (§VI-A).
func (v *VCore) reconfigureL2(newKB int) (int64, error) {
	dirty, err := v.l2.Reconfigure(newKB / mem.L2BankKB)
	if err != nil {
		return 0, err
	}
	v.stats.L2Reconfigs++
	v.stats.DirtyL2Flushes += int64(dirty)
	return mem.FlushCycles(dirty), nil
}
