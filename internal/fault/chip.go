package fault

import (
	"fmt"
	"sort"
)

// Chip-level faults. Where Event models a tile strike inside one chip's
// fabric, ChipEvent models whole-chip failure modes as the fleet
// control plane sees them: a chip that crashes (loses all in-flight
// work), hangs (stops executing and heartbeating, then resumes), or
// keeps executing while its heartbeats are lost (the network partition
// that manufactures false failure suspicions). Schedules are seeded and
// bit-for-bit deterministic, exactly like tile schedules, so fleet runs
// replay byte-identically.

// ChipFaultKind classifies a whole-chip fault.
type ChipFaultKind uint8

const (
	// ChipCrash halts the chip; every in-flight attempt is lost. With
	// Duration > 0 the chip reboots empty after that many ticks;
	// Duration 0 is a permanent loss.
	ChipCrash ChipFaultKind = iota
	// ChipHang stops execution and heartbeats for Duration ticks, then
	// resumes both with in-flight work intact.
	ChipHang
	// ChipHBLoss suppresses heartbeats for Duration ticks while the chip
	// keeps executing — the partition case that produces false
	// suspicions and orphaned (late, duplicate) result deliveries.
	ChipHBLoss
)

// String names the fault kind.
func (k ChipFaultKind) String() string {
	switch k {
	case ChipCrash:
		return "crash"
	case ChipHang:
		return "hang"
	case ChipHBLoss:
		return "hbloss"
	}
	return fmt.Sprintf("chipfault(%d)", k)
}

// ChipEvent is one scheduled whole-chip fault.
type ChipEvent struct {
	// Tick is the fleet tick the fault strikes at.
	Tick int64
	// Chip is the affected chip index.
	Chip int
	// Kind is what happens to it.
	Kind ChipFaultKind
	// Duration is the outage length in ticks (see the kind constants;
	// 0 on a crash means permanent).
	Duration int64
}

// ChipSchedule is a set of chip fault events, not necessarily sorted.
type ChipSchedule struct {
	Events []ChipEvent
}

// Empty reports whether the schedule contains no events.
func (s ChipSchedule) Empty() bool { return len(s.Events) == 0 }

// Validate rejects events with negative times or durations, chip
// indices outside [0, chips), and unknown kinds. Hang and heartbeat-
// loss events must have a positive duration (a zero-length outage is
// not observable and almost certainly a caller bug).
func (s ChipSchedule) Validate(chips int) error {
	for i, e := range s.Events {
		if e.Tick < 0 {
			return fmt.Errorf("fault: chip event %d strikes at negative tick %d", i, e.Tick)
		}
		if e.Chip < 0 || e.Chip >= chips {
			return fmt.Errorf("fault: chip event %d hits chip %d outside fleet of %d", i, e.Chip, chips)
		}
		if e.Duration < 0 {
			return fmt.Errorf("fault: chip event %d has negative duration %d", i, e.Duration)
		}
		if e.Kind != ChipCrash && e.Duration == 0 {
			return fmt.Errorf("fault: %s event %d has zero duration", e.Kind, i)
		}
		if e.Kind > ChipHBLoss {
			return fmt.Errorf("fault: chip event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// KillK returns the canonical chaos schedule: crash k of chips chips at
// the given tick, spread evenly across the fleet so survivors remain on
// both sides of every victim. k is clamped to chips-1 — a schedule must
// leave at least one survivor or no re-execution is possible.
func KillK(chips, k int, tick int64) ChipSchedule {
	if k >= chips {
		k = chips - 1
	}
	var s ChipSchedule
	if k <= 0 || chips <= 0 {
		return s
	}
	for i := 0; i < k; i++ {
		s.Events = append(s.Events, ChipEvent{
			Tick: tick, Chip: i * chips / k, Kind: ChipCrash,
		})
	}
	return s
}

// ChipSpec parameterizes random chip-fault generation. Zero values of
// optional fields select the defaults noted on each.
type ChipSpec struct {
	// Chips is the fleet size faults land on. Required.
	Chips int
	// Horizon bounds the schedule: no fault strikes at or after it.
	Horizon int64
	// Rate is the expected number of faults per 1000 chip-ticks.
	// Required (zero yields an empty schedule).
	Rate float64
	// Seed drives the generator.
	Seed uint64
	// CrashFrac and HangFrac apportion fault kinds; the remainder are
	// heartbeat losses (defaults 0.3 and 0.35).
	CrashFrac, HangFrac float64
	// MeanOutage is the mean hang/heartbeat-loss duration in ticks
	// (default 20).
	MeanOutage int64
	// RebootFrac is the probability a crash reboots rather than being
	// permanent (default 0.5); MeanReboot is the mean reboot delay in
	// ticks (default 60).
	RebootFrac float64
	MeanReboot int64
}

func (s ChipSpec) withDefaults() ChipSpec {
	if s.CrashFrac == 0 {
		s.CrashFrac = 0.3
	}
	if s.HangFrac == 0 {
		s.HangFrac = 0.35
	}
	if s.MeanOutage == 0 {
		s.MeanOutage = 20
	}
	if s.RebootFrac == 0 {
		s.RebootFrac = 0.5
	}
	if s.MeanReboot == 0 {
		s.MeanReboot = 60
	}
	return s
}

// GenerateChipFaults draws a deterministic chip-fault schedule:
// fleet-wide inter-arrival times are exponential with mean
// 1000/(Rate·Chips) ticks, victims are uniform, kinds follow the
// configured fractions and outage lengths are exponential around their
// means. The same spec always yields the same schedule.
func GenerateChipFaults(spec ChipSpec) (ChipSchedule, error) {
	spec = spec.withDefaults()
	if spec.Chips <= 0 {
		return ChipSchedule{}, fmt.Errorf("fault: invalid fleet size %d", spec.Chips)
	}
	if spec.Rate < 0 {
		return ChipSchedule{}, fmt.Errorf("fault: negative chip fault rate %g", spec.Rate)
	}
	if spec.Horizon < 0 {
		return ChipSchedule{}, fmt.Errorf("fault: negative horizon %d", spec.Horizon)
	}
	var sch ChipSchedule
	if spec.Rate == 0 || spec.Horizon == 0 {
		return sch, nil
	}
	r := newRNG(spec.Seed)
	mean := 1000 / (spec.Rate * float64(spec.Chips))
	tick := int64(0)
	for {
		tick += r.expInt64(mean)
		if tick >= spec.Horizon {
			break
		}
		e := ChipEvent{Tick: tick, Chip: int(r.intn(int64(spec.Chips)))}
		switch p := r.float64(); {
		case p < spec.CrashFrac:
			e.Kind = ChipCrash
			if r.float64() < spec.RebootFrac {
				e.Duration = r.expInt64(float64(spec.MeanReboot))
			}
		case p < spec.CrashFrac+spec.HangFrac:
			e.Kind = ChipHang
			e.Duration = r.expInt64(float64(spec.MeanOutage))
		default:
			e.Kind = ChipHBLoss
			e.Duration = r.expInt64(float64(spec.MeanOutage))
		}
		sch.Events = append(sch.Events, e)
	}
	return sch, nil
}

// ChipInjector replays a ChipSchedule against the fleet tick clock,
// delivering due events in deterministic (Tick, Chip, Kind) order.
type ChipInjector struct {
	events []ChipEvent
	next   int
}

// NewChipInjector builds an injector over a sorted copy of the schedule.
func NewChipInjector(s ChipSchedule, chips int) (*ChipInjector, error) {
	if err := s.Validate(chips); err != nil {
		return nil, err
	}
	inj := &ChipInjector{events: append([]ChipEvent(nil), s.Events...)}
	sort.SliceStable(inj.events, func(i, j int) bool {
		a, b := inj.events[i], inj.events[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		return a.Kind < b.Kind
	})
	return inj, nil
}

// Pending reports whether undelivered events remain.
func (inj *ChipInjector) Pending() bool { return inj.next < len(inj.events) }

// Advance returns every event due at or before now.
func (inj *ChipInjector) Advance(now int64) []ChipEvent {
	var due []ChipEvent
	for inj.next < len(inj.events) && inj.events[inj.next].Tick <= now {
		due = append(due, inj.events[inj.next])
		inj.next++
	}
	return due
}
