// Package fault models hardware failures on the CASH fabric. The
// paper's central hardware argument (§III-A) is that a homogeneous
// array of interchangeable Slices makes reallocation cheap; the same
// property makes a failed tile survivable — the chip can remap the
// affected virtual core onto an equivalent spare, or degrade it to a
// smaller configuration when no spare exists. This package supplies
// the *when and where* of failures: deterministic, seeded schedules of
// permanent and transient (self-repairing) tile faults, and an
// Injector the experiment engine ticks each control quantum to learn
// which faults are due.
//
// Everything here is bit-for-bit deterministic: the same Spec produces
// the same Schedule on every run and platform, and an Injector replays
// a Schedule in a fixed order, so experiment results with fault
// injection enabled are exactly reproducible.
package fault

import (
	"fmt"
	"sort"

	"cash/internal/noc"
)

// Event is one scheduled tile fault.
type Event struct {
	// Cycle is when the fault strikes.
	Cycle int64
	// Pos is the fabric tile the fault hits.
	Pos noc.Coord
	// Transient marks a fault that self-repairs (a bit flip, a thermal
	// excursion) rather than a permanent failure.
	Transient bool
	// RepairAfter is how many cycles after the strike a transient fault
	// heals. Ignored for permanent faults.
	RepairAfter int64
}

// Schedule is a set of fault events, not necessarily sorted.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule contains no events.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Validate rejects events with negative times or repair delays.
func (s Schedule) Validate() error {
	for i, e := range s.Events {
		if e.Cycle < 0 {
			return fmt.Errorf("fault: event %d strikes at negative cycle %d", i, e.Cycle)
		}
		if e.Transient && e.RepairAfter <= 0 {
			return fmt.Errorf("fault: transient event %d has non-positive repair delay %d", i, e.RepairAfter)
		}
	}
	return nil
}

// Spec parameterizes schedule generation. The zero value of optional
// fields selects the defaults noted on each.
type Spec struct {
	// Rate is the expected number of fault strikes per million cycles.
	// Required (a zero rate yields an empty schedule).
	Rate float64
	// Horizon bounds the schedule: no strike occurs at or after it.
	Horizon int64
	// Width, Height are the fabric dimensions faults land on.
	Width, Height int
	// Seed drives the generator.
	Seed uint64
	// TransientFrac is the probability a strike is transient
	// (default 0.25).
	TransientFrac float64
	// MeanRepair is the mean self-repair delay of transient faults in
	// cycles (default 1_500_000).
	MeanRepair int64
}

func (s Spec) withDefaults() Spec {
	if s.TransientFrac == 0 {
		s.TransientFrac = 0.25
	}
	if s.MeanRepair == 0 {
		s.MeanRepair = 1_500_000
	}
	return s
}

// Generate builds a deterministic schedule: strike inter-arrival times
// are exponential with mean 1e6/Rate cycles, positions are uniform over
// the fabric, and a TransientFrac share of strikes self-repair after an
// exponential delay around MeanRepair.
func Generate(spec Spec) (Schedule, error) {
	spec = spec.withDefaults()
	if spec.Rate < 0 {
		return Schedule{}, fmt.Errorf("fault: negative rate %g", spec.Rate)
	}
	if spec.Width <= 0 || spec.Height <= 0 {
		return Schedule{}, fmt.Errorf("fault: invalid fabric dimensions %dx%d", spec.Width, spec.Height)
	}
	if spec.Horizon < 0 {
		return Schedule{}, fmt.Errorf("fault: negative horizon %d", spec.Horizon)
	}
	var sch Schedule
	if spec.Rate == 0 || spec.Horizon == 0 {
		return sch, nil
	}
	r := newRNG(spec.Seed)
	mean := 1e6 / spec.Rate
	cycle := int64(0)
	for {
		cycle += r.expInt64(mean)
		if cycle >= spec.Horizon {
			break
		}
		e := Event{
			Cycle: cycle,
			Pos: noc.Coord{
				X: int(r.intn(int64(spec.Width))),
				Y: int(r.intn(int64(spec.Height))),
			},
		}
		if r.float64() < spec.TransientFrac {
			e.Transient = true
			e.RepairAfter = r.expInt64(float64(spec.MeanRepair))
		}
		sch.Events = append(sch.Events, e)
	}
	return sch, nil
}

// MustGenerate is Generate for statically-valid specs.
func MustGenerate(spec Spec) Schedule {
	s, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// Op says what an injector tick asks the fabric to do.
type Op uint8

const (
	// OpFail marks a tile failed.
	OpFail Op = iota
	// OpRepair returns a tile to service.
	OpRepair
)

// String names the operation.
func (o Op) String() string {
	if o == OpFail {
		return "fail"
	}
	return "repair"
}

// Tick is one due fault action, delivered by Injector.Advance.
type Tick struct {
	// Cycle is when the action was scheduled (≤ the Advance clock).
	Cycle int64
	// Pos is the affected tile.
	Pos noc.Coord
	// Op is what happens to it.
	Op Op
	// Transient marks actions belonging to a self-repairing fault.
	Transient bool
}

// Injector replays a Schedule against a cycle clock. The experiment
// engine calls Advance with the simulator clock once per control
// quantum (and at step boundaries); Advance returns every strike and
// self-repair that has come due, in a fixed deterministic order.
type Injector struct {
	strikes []Event // sorted by (Cycle, Y, X)
	next    int
	repairs []Tick // pending self-repairs, sorted the same way
}

// NewInjector builds an injector over a copy of the schedule.
func NewInjector(s Schedule) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{strikes: append([]Event(nil), s.Events...)}
	sort.SliceStable(inj.strikes, func(i, j int) bool {
		return tickLess(inj.strikes[i].Cycle, inj.strikes[i].Pos, inj.strikes[j].Cycle, inj.strikes[j].Pos)
	})
	return inj, nil
}

// MustInjector is NewInjector for statically-valid schedules.
func MustInjector(s Schedule) *Injector {
	inj, err := NewInjector(s)
	if err != nil {
		panic(err)
	}
	return inj
}

func tickLess(c1 int64, p1 noc.Coord, c2 int64, p2 noc.Coord) bool {
	if c1 != c2 {
		return c1 < c2
	}
	if p1.Y != p2.Y {
		return p1.Y < p2.Y
	}
	return p1.X < p2.X
}

// Pending reports whether any strikes or repairs remain to be delivered.
func (inj *Injector) Pending() bool {
	return inj.next < len(inj.strikes) || len(inj.repairs) > 0
}

// Advance returns every action due at or before now, ordered by
// scheduled cycle (repairs before strikes on ties, so a tile that heals
// and re-fails in the same window ends up failed). Transient strikes
// automatically enqueue their matching repair.
func (inj *Injector) Advance(now int64) []Tick {
	var due []Tick
	// Strikes first so that short transients enqueue their repair before
	// the due-repair drain below — a repair falling inside this window is
	// delivered now rather than a quantum late.
	for inj.next < len(inj.strikes) && inj.strikes[inj.next].Cycle <= now {
		e := inj.strikes[inj.next]
		inj.next++
		due = append(due, Tick{Cycle: e.Cycle, Pos: e.Pos, Op: OpFail, Transient: e.Transient})
		if e.Transient {
			inj.scheduleRepair(Tick{Cycle: e.Cycle + e.RepairAfter, Pos: e.Pos, Op: OpRepair, Transient: true})
		}
	}
	for len(inj.repairs) > 0 && inj.repairs[0].Cycle <= now {
		due = append(due, inj.repairs[0])
		inj.repairs = inj.repairs[1:]
	}
	sort.SliceStable(due, func(i, j int) bool {
		if due[i].Cycle != due[j].Cycle {
			return due[i].Cycle < due[j].Cycle
		}
		if due[i].Op != due[j].Op {
			return due[i].Op == OpRepair
		}
		return tickLess(due[i].Cycle, due[i].Pos, due[j].Cycle, due[j].Pos)
	})
	return due
}

// scheduleRepair inserts a repair keeping the queue sorted.
func (inj *Injector) scheduleRepair(t Tick) {
	i := sort.Search(len(inj.repairs), func(i int) bool {
		return !tickLess(inj.repairs[i].Cycle, inj.repairs[i].Pos, t.Cycle, t.Pos)
	})
	inj.repairs = append(inj.repairs, Tick{})
	copy(inj.repairs[i+1:], inj.repairs[i:])
	inj.repairs[i] = t
}
