package fault

import (
	"reflect"
	"testing"

	"cash/internal/noc"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Rate: 2, Horizon: 10_000_000, Width: 8, Height: 8, Seed: 11}
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec must generate identical schedules")
	}
	if a.Empty() {
		t.Fatal("a 2/Mcycle rate over 10M cycles should produce strikes")
	}
	spec.Seed = 12
	c := MustGenerate(spec)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should generate different schedules")
	}
	for i, e := range a.Events {
		if e.Cycle < 0 || e.Cycle >= spec.Horizon {
			t.Errorf("event %d at cycle %d outside horizon", i, e.Cycle)
		}
		if e.Pos.X < 0 || e.Pos.X >= 8 || e.Pos.Y < 0 || e.Pos.Y >= 8 {
			t.Errorf("event %d at %v outside the fabric", i, e.Pos)
		}
		if e.Transient && e.RepairAfter <= 0 {
			t.Errorf("transient event %d without repair delay", i)
		}
	}
}

func TestGenerateRateScales(t *testing.T) {
	lo := MustGenerate(Spec{Rate: 0.5, Horizon: 40_000_000, Width: 8, Height: 8, Seed: 3})
	hi := MustGenerate(Spec{Rate: 5, Horizon: 40_000_000, Width: 8, Height: 8, Seed: 3})
	if len(hi.Events) <= len(lo.Events) {
		t.Errorf("10x the rate should strike more often: %d vs %d", len(hi.Events), len(lo.Events))
	}
	empty := MustGenerate(Spec{Rate: 0, Horizon: 40_000_000, Width: 8, Height: 8})
	if !empty.Empty() {
		t.Error("zero rate must yield an empty schedule")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Rate: -1, Horizon: 1, Width: 2, Height: 2}); err == nil {
		t.Error("negative rate must fail")
	}
	if _, err := Generate(Spec{Rate: 1, Horizon: 1, Width: 0, Height: 2}); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := Generate(Spec{Rate: 1, Horizon: -1, Width: 2, Height: 2}); err == nil {
		t.Error("negative horizon must fail")
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := Schedule{Events: []Event{{Cycle: -1}}}
	if bad.Validate() == nil {
		t.Error("negative cycle must fail validation")
	}
	bad = Schedule{Events: []Event{{Cycle: 1, Transient: true}}}
	if bad.Validate() == nil {
		t.Error("transient without repair delay must fail validation")
	}
	if _, err := NewInjector(bad); err == nil {
		t.Error("injector must reject an invalid schedule")
	}
}

func TestInjectorOrderAndRepairs(t *testing.T) {
	sch := Schedule{Events: []Event{
		{Cycle: 500, Pos: noc.Coord{X: 1, Y: 1}},
		{Cycle: 100, Pos: noc.Coord{X: 0, Y: 0}, Transient: true, RepairAfter: 250},
		{Cycle: 100, Pos: noc.Coord{X: 2, Y: 0}},
	}}
	inj := MustInjector(sch)
	if !inj.Pending() {
		t.Fatal("injector should have pending events")
	}

	due := inj.Advance(99)
	if len(due) != 0 {
		t.Fatalf("nothing is due before cycle 100, got %v", due)
	}
	due = inj.Advance(400)
	// Strikes at 100 (two, X order), then the transient repair at 350.
	want := []Tick{
		{Cycle: 100, Pos: noc.Coord{X: 0, Y: 0}, Op: OpFail, Transient: true},
		{Cycle: 100, Pos: noc.Coord{X: 2, Y: 0}, Op: OpFail},
		{Cycle: 350, Pos: noc.Coord{X: 0, Y: 0}, Op: OpRepair, Transient: true},
	}
	if !reflect.DeepEqual(due, want) {
		t.Fatalf("Advance(400) = %v, want %v", due, want)
	}
	due = inj.Advance(1000)
	if len(due) != 1 || due[0].Cycle != 500 || due[0].Op != OpFail {
		t.Fatalf("Advance(1000) = %v, want the cycle-500 strike", due)
	}
	if inj.Pending() {
		t.Error("all events delivered; nothing should be pending")
	}
	if got := inj.Advance(1 << 40); len(got) != 0 {
		t.Errorf("drained injector returned %v", got)
	}
}

func TestInjectorRepairBeforeStrikeOnTie(t *testing.T) {
	// A tile that heals and re-fails at the same cycle must end failed:
	// the repair is delivered first.
	sch := Schedule{Events: []Event{
		{Cycle: 100, Pos: noc.Coord{X: 0, Y: 0}, Transient: true, RepairAfter: 100},
		{Cycle: 200, Pos: noc.Coord{X: 0, Y: 0}},
	}}
	inj := MustInjector(sch)
	due := inj.Advance(200)
	if len(due) != 3 {
		t.Fatalf("want 3 actions, got %v", due)
	}
	if due[1].Op != OpRepair || due[2].Op != OpFail {
		t.Errorf("tie at cycle 200 must order repair before strike: %v", due)
	}
}

func TestInjectorDeterministicReplay(t *testing.T) {
	sch := MustGenerate(Spec{Rate: 3, Horizon: 20_000_000, Width: 16, Height: 16, Seed: 9})
	replay := func() []Tick {
		inj := MustInjector(sch)
		var all []Tick
		for now := int64(0); now <= 25_000_000; now += 100_000 {
			all = append(all, inj.Advance(now)...)
		}
		return all
	}
	a, b := replay(), replay()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("injector replay must be deterministic")
	}
	if len(a) == 0 {
		t.Fatal("replay produced no actions")
	}
}
