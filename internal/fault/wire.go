package fault

import (
	"fmt"
	"time"
)

// Wire-level faults. Where Event models tile strikes and ChipEvent
// whole-chip outages, WireOp models what a lossy transport does to one
// protocol frame between the cashd daemon and its clients: deliver it,
// drop it, delay it, duplicate it, truncate it mid-frame (tearing the
// connection), or reorder it past the next frame. Decisions are drawn
// from the same SplitMix64 generator the tile and chip schedules use,
// so a faulted wire replays bit-for-bit from its seed.

// WireOp is the fate of one frame.
type WireOp uint8

const (
	// WirePass delivers the frame untouched.
	WirePass WireOp = iota
	// WireDrop silently discards the frame.
	WireDrop
	// WireDelay delivers the frame after a pause.
	WireDelay
	// WireDup delivers the frame twice back to back.
	WireDup
	// WireTruncate delivers a prefix of the frame and then severs the
	// connection, the mid-write process death a length-prefixed codec
	// must survive.
	WireTruncate
	// WireReorder holds the frame back and delivers it after the next
	// one.
	WireReorder
)

// String names the operation.
func (o WireOp) String() string {
	switch o {
	case WirePass:
		return "pass"
	case WireDrop:
		return "drop"
	case WireDelay:
		return "delay"
	case WireDup:
		return "dup"
	case WireTruncate:
		return "truncate"
	case WireReorder:
		return "reorder"
	}
	return fmt.Sprintf("wireop(%d)", o)
}

// WireSpec parameterizes a faulty wire. Rates are per-frame
// probabilities; the remainder passes untouched. The zero value is a
// clean wire.
type WireSpec struct {
	// Seed drives the per-frame decisions.
	Seed uint64
	// DropRate, DelayRate, DupRate, TruncateRate and ReorderRate are
	// the per-frame probabilities of each fault, each in [0, 1] with a
	// sum of at most 1.
	DropRate, DelayRate, DupRate, TruncateRate, ReorderRate float64
	// Delay is how long a WireDelay holds the frame (default 1ms).
	Delay time.Duration
}

// Enabled reports whether the spec injects any fault at all.
func (s WireSpec) Enabled() bool {
	return s.DropRate > 0 || s.DelayRate > 0 || s.DupRate > 0 ||
		s.TruncateRate > 0 || s.ReorderRate > 0
}

// Validate rejects rates outside [0, 1] or summing past 1.
func (s WireSpec) Validate() error {
	sum := 0.0
	for _, r := range [...]float64{s.DropRate, s.DelayRate, s.DupRate, s.TruncateRate, s.ReorderRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: wire fault rate %g outside [0, 1]", r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("fault: wire fault rates sum to %g > 1", sum)
	}
	if s.Delay < 0 {
		return fmt.Errorf("fault: negative wire delay %v", s.Delay)
	}
	return nil
}

func (s WireSpec) withDefaults() WireSpec {
	if s.Delay == 0 {
		s.Delay = time.Millisecond
	}
	return s
}

// DefaultWireSpec is the chaos soak's standard lossy wire: every fault
// class armed at a few percent, seeded for replay.
func DefaultWireSpec(seed uint64) WireSpec {
	return WireSpec{
		Seed:     seed,
		DropRate: 0.05, DelayRate: 0.05, DupRate: 0.04,
		TruncateRate: 0.03, ReorderRate: 0.03,
	}
}

// WireFaults draws per-frame fates from a seeded generator. One
// instance serves one unidirectional frame stream; derive one per
// connection (see Fork) so the decision sequence each connection sees
// is independent of how other connections interleave.
type WireFaults struct {
	spec WireSpec
	rng  rng
	// Counts tallies the fates dealt so far, indexed by WireOp.
	Counts [WireReorder + 1]int64
}

// NewWireFaults validates the spec and builds a generator.
func NewWireFaults(spec WireSpec) (*WireFaults, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	return &WireFaults{spec: spec, rng: newRNG(spec.Seed)}, nil
}

// Fork derives an independent generator for one connection: same
// rates, a seed mixed from the parent's seed and the connection index.
func (f *WireFaults) Fork(conn uint64) *WireFaults {
	spec := f.spec
	spec.Seed = f.spec.Seed ^ (conn+1)*0x9e3779b97f4a7c15
	nf, err := NewWireFaults(spec)
	if err != nil {
		panic(err) // unreachable: the parent spec already validated
	}
	return nf
}

// Delay returns how long a WireDelay holds its frame.
func (f *WireFaults) Delay() time.Duration { return f.spec.Delay }

// Next deals the next frame's fate.
func (f *WireFaults) Next() WireOp {
	op := WirePass
	r := f.rng.float64()
	s := f.spec
	switch {
	case r < s.DropRate:
		op = WireDrop
	case r < s.DropRate+s.DelayRate:
		op = WireDelay
	case r < s.DropRate+s.DelayRate+s.DupRate:
		op = WireDup
	case r < s.DropRate+s.DelayRate+s.DupRate+s.TruncateRate:
		op = WireTruncate
	case r < s.DropRate+s.DelayRate+s.DupRate+s.TruncateRate+s.ReorderRate:
		op = WireReorder
	}
	f.Counts[op]++
	return op
}
