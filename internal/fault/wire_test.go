package fault

import "testing"

func TestWireSpecValidate(t *testing.T) {
	cases := []struct {
		spec WireSpec
		ok   bool
	}{
		{WireSpec{}, true},
		{DefaultWireSpec(1), true},
		{WireSpec{DropRate: 1}, true},
		{WireSpec{DropRate: -0.1}, false},
		{WireSpec{DupRate: 1.1}, false},
		{WireSpec{DropRate: 0.6, DelayRate: 0.6}, false},
		{WireSpec{Delay: -1}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestWireFaultsDeterministic(t *testing.T) {
	spec := DefaultWireSpec(7)
	a, err := NewWireFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewWireFaults(spec)
	for i := 0; i < 10_000; i++ {
		if oa, ob := a.Next(), b.Next(); oa != ob {
			t.Fatalf("frame %d: same seed dealt %v vs %v", i, oa, ob)
		}
	}
	if a.Counts != b.Counts {
		t.Fatalf("count divergence: %v vs %v", a.Counts, b.Counts)
	}
}

func TestWireFaultsDealsEveryOp(t *testing.T) {
	f, err := NewWireFaults(DefaultWireSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		f.Next()
	}
	for op := WirePass; op <= WireReorder; op++ {
		if f.Counts[op] == 0 {
			t.Errorf("20k frames never dealt %v", op)
		}
	}
	// Rates should land near spec: drop at 5% of 20k = ~1000.
	if n := f.Counts[WireDrop]; n < 700 || n > 1300 {
		t.Errorf("drop count %d wildly off the 5%% rate", n)
	}
}

func TestWireFaultsForkIndependent(t *testing.T) {
	parent, err := NewWireFaults(DefaultWireSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := parent.Fork(0), parent.Fork(1)
	c0again := parent.Fork(0)
	same, diff := 0, 0
	for i := 0; i < 1000; i++ {
		a, b := c0.Next(), c1.Next()
		if r := c0again.Next(); r != a {
			t.Fatalf("frame %d: re-forked conn 0 dealt %v vs %v", i, r, a)
		}
		if a == b {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("conn 0 and conn 1 dealt identical sequences; forks are correlated")
	}
}

func TestCleanWireAlwaysPasses(t *testing.T) {
	f, err := NewWireFaults(WireSpec{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if f.spec.Enabled() {
		t.Fatal("zero spec reports Enabled")
	}
	for i := 0; i < 1000; i++ {
		if op := f.Next(); op != WirePass {
			t.Fatalf("clean wire dealt %v", op)
		}
	}
}
