package fault

import "math"

// rng is a SplitMix64 pseudo-random generator — the same tiny
// fixed-algorithm generator package workload uses, duplicated here so
// fault schedules stay bit-for-bit deterministic across runs and
// platforms (math/rand's default source changed across Go releases).
type rng struct {
	state uint64
}

func newRNG(seed uint64) rng {
	// Avoid the all-zero fixed point and decorrelate nearby seeds.
	r := rng{state: seed + 0x9e3779b97f4a7c15}
	r.next()
	return r
}

// next returns the next 64 pseudo-random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// expInt64 returns an exponentially-distributed delay with the given
// mean, rounded to at least one cycle.
func (r *rng) expInt64(mean float64) int64 {
	d := int64(-math.Log(1-r.float64()) * mean)
	if d < 1 {
		d = 1
	}
	return d
}
