package fault

import (
	"reflect"
	"testing"
)

func TestGenerateChipFaultsDeterministic(t *testing.T) {
	spec := ChipSpec{Chips: 8, Horizon: 500, Rate: 5, Seed: 11}
	a, err := GenerateChipFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChipFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec produced different schedules:\n%v\n%v", a, b)
	}
	if len(a.Events) == 0 {
		t.Fatal("expected a non-empty schedule at rate 5")
	}
	if err := a.Validate(8); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	kinds := map[ChipFaultKind]int{}
	for _, e := range a.Events {
		kinds[e.Kind]++
	}
	if len(kinds) < 2 {
		t.Fatalf("expected a mix of fault kinds, got %v", kinds)
	}
}

func TestChipScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   ChipEvent
	}{
		{"negative tick", ChipEvent{Tick: -1, Chip: 0, Kind: ChipCrash}},
		{"chip out of range", ChipEvent{Tick: 0, Chip: 4, Kind: ChipCrash}},
		{"negative duration", ChipEvent{Tick: 0, Chip: 0, Kind: ChipHang, Duration: -3}},
		{"zero-length hang", ChipEvent{Tick: 0, Chip: 0, Kind: ChipHang}},
		{"zero-length hbloss", ChipEvent{Tick: 0, Chip: 0, Kind: ChipHBLoss}},
		{"unknown kind", ChipEvent{Tick: 0, Chip: 0, Kind: 99, Duration: 1}},
	}
	for _, c := range cases {
		s := ChipSchedule{Events: []ChipEvent{c.ev}}
		if err := s.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.ev)
		}
	}
	ok := ChipSchedule{Events: []ChipEvent{
		{Tick: 3, Chip: 1, Kind: ChipCrash},
		{Tick: 5, Chip: 2, Kind: ChipHang, Duration: 10},
	}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestKillKLeavesSurvivors(t *testing.T) {
	s := KillK(6, 2, 30)
	if len(s.Events) != 2 {
		t.Fatalf("KillK(6,2) scheduled %d crashes", len(s.Events))
	}
	victims := map[int]bool{}
	for _, e := range s.Events {
		if e.Kind != ChipCrash || e.Tick != 30 {
			t.Fatalf("unexpected event %+v", e)
		}
		if victims[e.Chip] {
			t.Fatalf("chip %d killed twice", e.Chip)
		}
		victims[e.Chip] = true
	}
	// Killing the whole fleet must clamp to chips-1.
	if s := KillK(4, 9, 1); len(s.Events) != 3 {
		t.Fatalf("KillK(4,9) scheduled %d crashes, want 3", len(s.Events))
	}
}

func TestChipInjectorOrderAndDelivery(t *testing.T) {
	s := ChipSchedule{Events: []ChipEvent{
		{Tick: 20, Chip: 3, Kind: ChipHang, Duration: 5},
		{Tick: 10, Chip: 1, Kind: ChipCrash},
		{Tick: 10, Chip: 0, Kind: ChipHBLoss, Duration: 4},
	}}
	inj, err := NewChipInjector(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	due := inj.Advance(10)
	if len(due) != 2 || due[0].Chip != 0 || due[1].Chip != 1 {
		t.Fatalf("Advance(10) = %v, want chips 0 then 1", due)
	}
	if !inj.Pending() {
		t.Fatal("injector should still hold the tick-20 event")
	}
	if due := inj.Advance(19); due != nil {
		t.Fatalf("Advance(19) delivered early: %v", due)
	}
	due = inj.Advance(25)
	if len(due) != 1 || due[0].Chip != 3 {
		t.Fatalf("Advance(25) = %v", due)
	}
	if inj.Pending() {
		t.Fatal("injector should be drained")
	}
}
