package main

import (
	"fmt"

	"cash/internal/vcore"
	"cash/internal/workload"
)

func diagPhase(name string, mut func(*workload.Phase)) {
	p := workload.Phase{
		Name: name, Instrs: 1e6,
		Mix:         workload.InstrMix{ALU: 1},
		MeanDepDist: 8, DepFrac: 0, SecondSrcFrac: 0,
		WorkingSetKB: 256, HotSetKB: 8, HotFrac: 1, StreamFrac: 0, Stride: 64,
		MispredictRate: 0,
	}
	mut(&p)
	fmt.Printf("%-28s", name)
	for _, cfg := range []vcore.Config{{Slices: 1, L2KB: 64}, {Slices: 1, L2KB: 4096}, {Slices: 4, L2KB: 64}, {Slices: 4, L2KB: 4096}, {Slices: 8, L2KB: 4096}} {
		fmt.Printf("  %s=%5.2f", cfg, ipc(p, 0, cfg, 40000))
	}
	fmt.Println()
}

func diag() {
	diagPhase("alu-nodep", func(p *workload.Phase) {})
	diagPhase("alu-dep85-d8", func(p *workload.Phase) { p.DepFrac = 0.85 })
	diagPhase("alu-dep85-d8-src2", func(p *workload.Phase) { p.DepFrac = 0.85; p.SecondSrcFrac = 0.5 })
	diagPhase("alu-dep85-d2", func(p *workload.Phase) { p.DepFrac = 0.85; p.MeanDepDist = 2 })
	diagPhase("alu-serial-chain", func(p *workload.Phase) { p.DepFrac = 1; p.MeanDepDist = 1 })
	diagPhase("+loads-hot", func(p *workload.Phase) {
		p.DepFrac = 0.85
		p.Mix = workload.InstrMix{ALU: 0.66, Load: 0.24, Store: 0.10}
	})
	diagPhase("+loads-ws1MB-hot50", func(p *workload.Phase) {
		p.DepFrac = 0.85
		p.Mix = workload.InstrMix{ALU: 0.66, Load: 0.24, Store: 0.10}
		p.WorkingSetKB = 1024
		p.HotFrac = 0.5
	})
	diagPhase("+branch-nomiss", func(p *workload.Phase) {
		p.DepFrac = 0.85
		p.Mix = workload.InstrMix{ALU: 0.48, Load: 0.24, Store: 0.10, Branch: 0.18}
	})
	diagPhase("+branch-miss6pct", func(p *workload.Phase) {
		p.DepFrac = 0.85
		p.Mix = workload.InstrMix{ALU: 0.48, Load: 0.24, Store: 0.10, Branch: 0.18}
		p.MispredictRate = 0.06
	})
	diagPhase("full-ws1MB", func(p *workload.Phase) {
		p.DepFrac = 0.85
		p.SecondSrcFrac = 0.5
		p.Mix = workload.InstrMix{ALU: 0.48, Load: 0.24, Store: 0.10, Branch: 0.18}
		p.MispredictRate = 0.06
		p.WorkingSetKB = 1024
		p.HotFrac = 0.5
	})
}
