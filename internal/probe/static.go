package main

import (
	"fmt"

	"cash/internal/alloc"
	"cash/internal/experiment"
	"cash/internal/oracle"
	"cash/internal/vcore"
	"cash/internal/workload"
)

func staticCmp(appName string) {
	app, _ := workload.ByName(appName)
	db := oracle.NewDB()
	cfg := vcore.Config{Slices: 7, L2KB: 8192}
	res, err := experiment.Run(app, alloc.Static{Cfg: cfg}, experiment.Opts{Target: 0.5})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Average engine QoS per phase.
	type acc struct {
		q float64
		n int
	}
	per := make([]acc, len(app.Phases))
	for _, s := range res.Samples {
		per[s.Phase].q += s.QoS
		per[s.Phase].n++
	}
	for pi, p := range app.Phases {
		o := db.IPC(app, pi, cfg)
		e := 0.0
		if per[pi].n > 0 {
			e = per[pi].q / float64(per[pi].n)
		}
		fmt.Printf("phase %-14s oracle=%.3f engine=%.3f (n=%d)\n", p.Name, o, e, per[pi].n)
	}
}
