package main

import (
	"fmt"

	"cash/internal/alloc"
	"cash/internal/cashrt"
	"cash/internal/cost"
	"cash/internal/experiment"
	"cash/internal/oracle"
	"cash/internal/workload"
)

func sweep2() {
	db := oracle.NewDB()
	db.LoadCache(oracle.DefaultCachePath())
	model := cost.Default()
	type variant struct {
		name         string
		guard, probe int
		nosnap       bool
		rescale      int
		margin       float64
	}
	variants := []variant{
		{"noguard-noprobe", 0, 0, false, 0, 0.08},
		{"commit-noprobe", 1, 0, false, 0, 0.08},
		{"demand-noprobe", 2, 0, false, 0, 0.08},
		{"noguard-probe3", 0, 3, false, 0, 0.12},
	}
	for _, appName := range []string{"mcf", "hmmer", "gcc", "x264"} {
		app, _ := workload.ByName(appName)
		db.CharacterizeApp(app)
		db.SaveCache(oracle.DefaultCachePath())
		target := db.QoSTarget(app)
		optCost, err := db.OptimalCost(app, target, model)
		if err != nil {
			fmt.Println(appName, err)
			continue
		}
		wc, _ := db.WorstCaseConfig(app, target, model)
		rti, _ := experiment.Run(app, alloc.RaceToIdle{WorstCase: wc, TargetQoS: target}, experiment.Opts{Target: target, Tolerance: 0.10})
		fmt.Printf("== %s target=%.3f  RTI=%.2fx/%.1f%%\n", appName, target, rti.TotalCost/optCost, 100*rti.ViolationRate)
		for _, v := range variants {
			r := cashrt.MustNew(target, model, cashrt.Options{
				Seed: 7, GuardStyle: v.guard, ProbePeriod: v.probe,
				NoSnap: v.nosnap, RescaleMode: v.rescale, Margin: v.margin,
			})
			res, err := experiment.Run(app, r, experiment.Opts{Target: target, Tolerance: 0.10})
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Printf("  %-22s %.2fx  viol=%.1f%%\n", v.name, res.TotalCost/optCost, 100*res.ViolationRate)
		}
	}
}
