package main

import (
	"fmt"

	"cash/internal/alloc"
	"cash/internal/cashrt"
	"cash/internal/cost"
	"cash/internal/experiment"
	"cash/internal/oracle"
	"cash/internal/workload"
)

// traced wraps the CASH runtime and prints each decision.
type traced struct {
	r *cashrt.Runtime
	n int
}

func (t *traced) Name() string { return t.r.Name() }
func (t *traced) Decide(prev []alloc.Observation, tau int64) alloc.Plan {
	var qi, qc int64
	for _, ob := range prev {
		qi += ob.Instrs
		qc += ob.Cycles
	}
	q := 0.0
	if qc > 0 {
		q = float64(qi) / float64(qc)
	}
	plan := t.r.Decide(prev, tau)
	if t.n < 60 {
		fmt.Printf("it=%3d q=%.3f bhat=%.3f s=%.2f plan=", t.n, q, t.r.Estimator().Estimate(), t.r.Speedup())
		for _, st := range plan.Steps {
			fmt.Printf("[%s %dk idle=%v]", st.Config, st.MaxCycles/1000, st.Idle)
		}
		fmt.Println()
	}
	t.n++
	return plan
}

func traceCASH(appName string) {
	app, _ := workload.ByName(appName)
	db := oracle.NewDB()
	db.LoadCache(oracle.DefaultCachePath())
	db.CharacterizeApp(app)
	db.SaveCache(oracle.DefaultCachePath())
	target := db.QoSTarget(app)
	fmt.Printf("target=%.3f\n", target)
	tr := &traced{r: cashrt.MustNew(target, cost.Default(), cashrt.Options{Seed: 7})}
	res, err := experiment.Run(app, tr, experiment.Opts{Target: target})
	fmt.Println(err, "viol:", res.ViolationRate, "cost:", res.TotalCost)
}
