package main

import (
	"fmt"
	"time"

	"cash/internal/alloc"
	"cash/internal/cashrt"
	"cash/internal/cost"
	"cash/internal/experiment"
	"cash/internal/oracle"
	"cash/internal/workload"
)

func e2e(appName string) {
	app, ok := workload.ByName(appName)
	if !ok {
		fmt.Println("unknown app", appName)
		return
	}
	db := oracle.NewDB()
	db.LoadCache(oracle.DefaultCachePath())
	model := cost.Default()
	t0 := time.Now()
	db.CharacterizeApp(app)
	db.SaveCache(oracle.DefaultCachePath())
	fmt.Printf("characterized %s in %v\n", app.Name, time.Since(t0))

	target := db.QoSTarget(app)
	fmt.Printf("QoS target: %.3f IPC\n", target)

	optCost, err := db.OptimalCost(app, target, model)
	if err != nil {
		fmt.Println("oracle:", err)
		return
	}
	wc, err := db.WorstCaseConfig(app, target, model)
	if err != nil {
		fmt.Println("worst-case:", err)
		return
	}
	fmt.Printf("optimal cost: $%.5f; worst-case cfg: %s\n", optCost, wc)
	perPhase, phaseQoS, _ := db.BestPerPhase(app, target, model)
	for i, c := range perPhase {
		fmt.Printf("  phase %d (%s): %s ipc=%.3f\n", i, app.Phases[i].Name, c, phaseQoS[i])
	}

	opts := experiment.Opts{Target: target}
	run := func(name string, a alloc.Allocator) {
		t := time.Now()
		res, err := experiment.Run(app, a, opts)
		if err != nil {
			fmt.Printf("%-20s error: %v\n", name, err)
			return
		}
		fmt.Printf("%-20s cost=$%.5f (%.2fx opt) viol=%.1f%% samples=%d cycles=%dM reconfigs=%d in %v\n",
			name, res.TotalCost, res.TotalCost/optCost, 100*res.ViolationRate,
			len(res.Samples), res.TotalCycles/1e6, res.ReconfigCount, time.Since(t))
	}

	run("RaceToIdle", alloc.RaceToIdle{WorstCase: wc, TargetQoS: target})
	cvx, _ := cashrt.NewConvex(target, model, db.AvgSpeedup(app))
	run("Convex", cvx)
	cash := cashrt.MustNew(target, model, cashrt.Options{Seed: 7})
	run("CASH", cash)
	orc := &alloc.OraclePolicy{PerPhase: perPhase, PhaseQoS: phaseQoS, TargetQoS: target}
	run("OraclePolicy", orc)
}
