// Command probe is a development-time characterisation harness used to
// calibrate the workload models against the simulator. It is not part
// of the public deliverable (cmd/cashsim is); it stays in the tree so
// the calibration in apps.go can be re-verified.
package main

import (
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"cash/internal/slice"
	"cash/internal/ssim"
	"cash/internal/vcore"
	"cash/internal/workload"
)

func ipc(p workload.Phase, pi int, cfg vcore.Config, n int64) float64 {
	g := workload.NewPhaseGen(p, pi, 42)
	s := ssim.MustNew(cfg, slice.DefaultConfig(), ssim.SteerEarliest)
	s.WarmPhase(p.Regions(pi))
	s.Run(g, 5000) // pipeline warmup
	start := s.Cycle()
	instrs, _ := s.Run(g, n)
	return float64(instrs) / float64(s.Cycle()-start)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "prof" {
		f, _ := os.Create("/tmp/cpu.prof")
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
		p := workload.X264().Phases[1]
		t0 := time.Now()
		var total int64
		for _, s := range []int{1, 4, 8} {
			g := workload.NewPhaseGen(p, 1, 42)
			sim := ssim.MustNew(vcore.Config{Slices: s, L2KB: 1024}, slice.DefaultConfig(), ssim.SteerEarliest)
			in, _ := sim.Run(g, 2_000_000)
			total += in
		}
		el := time.Since(t0)
		fmt.Printf("%d instrs in %v = %.1f M instr/s\n", total, el, float64(total)/el.Seconds()/1e6)
		return
	}

	if len(os.Args) > 1 && os.Args[1] == "sweep2" {
		sweep2()
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "sweep" {
		sweep(os.Args[2])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "viol" {
		violHist(os.Args[2])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "trace" {
		traceCASH(os.Args[2])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "static" {
		staticCmp(os.Args[2])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "e2e" {
		e2e(os.Args[2])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "check" {
		check()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "diag" {
		diag()
		return
	}
	apps := workload.Apps()
	if len(os.Args) > 1 {
		if a, ok := workload.ByName(os.Args[1]); ok {
			apps = []workload.App{a}
		}
	} else {
		apps = []workload.App{workload.X264()}
	}
	t0 := time.Now()
	for _, app := range apps {
		fmt.Printf("== %s ==\n", app.Name)
		for pi, p := range app.Phases {
			fmt.Printf("%-14s ws=%5dKB mid=%4dKB ilp=%4.1f\n", p.Name, p.WorkingSetKB, p.MidSetKB, p.MeanDepDist)
			var grid [8][8]float64
			for si := 0; si < 8; si++ {
				fmt.Printf("  s=%d: ", si+1)
				l2 := 64
				for li := 0; li < 8; li++ {
					v := ipc(p, pi, vcore.Config{Slices: si + 1, L2KB: l2}, 40000)
					grid[si][li] = v
					fmt.Printf("%5.2f ", v)
					l2 *= 2
				}
				fmt.Println()
			}
			// Local-optima analysis (4-neighbourhood strict maxima).
			best, bs, bl := 0.0, 0, 0
			var locals []string
			for si := 0; si < 8; si++ {
				for li := 0; li < 8; li++ {
					v := grid[si][li]
					if v > best {
						best, bs, bl = v, si, li
					}
					isMax := true
					if si > 0 && grid[si-1][li] >= v {
						isMax = false
					}
					if si < 7 && grid[si+1][li] >= v {
						isMax = false
					}
					if li > 0 && grid[si][li-1] >= v {
						isMax = false
					}
					if li < 7 && grid[si][li+1] >= v {
						isMax = false
					}
					if isMax {
						locals = append(locals, fmt.Sprintf("%ds/%dKB=%.2f", si+1, 64<<li, v))
					}
				}
			}
			fmt.Printf("  global opt: %ds/%dKB=%.2f; local maxima: %v\n", bs+1, 64<<bl, best, locals)
		}
	}
	fmt.Println("elapsed:", time.Since(t0))
}
