package main

import (
	"fmt"

	"cash/internal/cashrt"
	"cash/internal/cost"
	"cash/internal/experiment"
	"cash/internal/oracle"
	"cash/internal/workload"
)

func violHist(appName string) {
	app, _ := workload.ByName(appName)
	db := oracle.NewDB()
	db.LoadCache(oracle.DefaultCachePath())
	db.CharacterizeApp(app)
	db.SaveCache(oracle.DefaultCachePath())
	target := db.QoSTarget(app)
	cash := cashrt.MustNew(target, cost.Default(), cashrt.Options{Seed: 7})
	res, _ := experiment.Run(app, cash, experiment.Opts{Target: target})
	type acc struct {
		v, n int
		q, c float64
	}
	per := make([]acc, len(app.Phases))
	cfgViol := map[string]int{}
	for _, s := range res.Samples {
		a := &per[s.Phase]
		a.n++
		a.q += s.QoS
		a.c += s.CostRate
		if s.Violated {
			a.v++
			cfgViol[s.Config.String()]++
		}
	}
	model := cost.Default()
	perPhase, phaseQoS, _ := db.BestPerPhase(app, target, model)
	fmt.Printf("target=%.3f total viol=%.1f%% recoveries=%d\n", target, 100*res.ViolationRate, cash.Recoveries)
	for pi, p := range app.Phases {
		a := per[pi]
		if a.n == 0 {
			continue
		}
		optRate := model.Rate(perPhase[pi]) * target / phaseQoS[pi]
		fmt.Printf("%-14s n=%3d viol=%3d avgq=%.3f costrate=%.4f opt=%s rate*=%.4f\n",
			p.Name, a.n, a.v, a.q/float64(a.n), a.c/float64(a.n), perPhase[pi], optRate)
	}
	fmt.Println("violating configs:", cfgViol)
}
