package main

import (
	"fmt"

	"cash/internal/cashrt"
	"cash/internal/cost"
	"cash/internal/experiment"
	"cash/internal/oracle"
	"cash/internal/workload"
)

func sweep(appName string) {
	app, _ := workload.ByName(appName)
	db := oracle.NewDB()
	db.LoadCache(oracle.DefaultCachePath())
	db.CharacterizeApp(app)
	db.SaveCache(oracle.DefaultCachePath())
	target := db.QoSTarget(app)
	model := cost.Default()
	optCost, _ := db.OptimalCost(app, target, model)
	fmt.Printf("app=%s target=%.3f opt=%.3g\n", app.Name, target, optCost)
	fmt.Printf("%-6s %-6s %-5s %-8s %-7s | %-9s %-7s\n", "guard", "probe", "snap", "rescale", "margin", "cost/opt", "viol%")
	for _, guard := range []int{0, 1, 2} { // off, committed, demand
		for _, probe := range []int{0, 1, 3} {
			for _, snap := range []bool{false, true} {
				for _, resc := range []int{0, 2} {
					for _, margin := range []float64{0.08, 0.15} {
						r := cashrt.MustNew(target, model, cashrt.Options{
							Seed: 7, GuardStyle: guard, ProbePeriod: probe,
							NoSnap: snap, RescaleMode: resc, Margin: margin,
						})
						res, err := experiment.Run(app, r, experiment.Opts{Target: target})
						if err != nil {
							fmt.Println(err)
							continue
						}
						fmt.Printf("%-6d %-6d %-5v %-8d %-7.2f | %-9.2f %-7.1f\n",
							guard, probe, snap, resc, margin, res.TotalCost/optCost, 100*res.ViolationRate)
					}
				}
			}
		}
	}
}
