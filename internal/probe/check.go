package main

import (
	cashisa "cash/internal/isa"
	"fmt"

	"cash/internal/slice"
	"cash/internal/ssim"
	"cash/internal/vcore"
	"cash/internal/workload"
)

func check() {
	p := workload.Phase{
		Name: "chk", Instrs: 1e6,
		Mix:         workload.InstrMix{ALU: 1},
		MeanDepDist: 8, DepFrac: 0,
		WorkingSetKB: 256, HotSetKB: 8, HotFrac: 1, StreamFrac: 0, Stride: 64,
	}
	g := workload.NewPhaseGen(p, 0, 42)
	s := ssim.MustNew(vcore.Config{Slices: 4, L2KB: 4096}, slice.DefaultConfig(), ssim.SteerEarliest)
	rg := p.Regions(0)
	fmt.Printf("code region: base=%#x size=%d\n", rg.Code.Base, rg.Code.Size)
	s.WarmPhase(rg)
	h1, _, _ := s.VCore().L2().Access(rg.Code.Base, false)
	h2, _, _ := s.VCore().L2().Access(rg.Code.Base+4096, false)
	h3, _, _ := s.VCore().L2().Access(rg.Main.Base, false)
	fmt.Println("resident after prefill: codebase:", h1, "code+4k:", h2, "main:", h3)
	var buf [64]cashisa.Instr
	gg := workload.NewPhaseGen(p, 0, 43)
	miss := 0
	var missPCs []uint64
	for i := 0; i < 40; i++ {
		gg.Next(buf[:])
		for _, in := range buf {
			if !s.VCore().L2().Contains(in.PC) {
				miss++
				if len(missPCs) < 5 {
					missPCs = append(missPCs, in.PC)
				}
			}
		}
	}
	fmt.Printf("gen PCs not in L2: %d/2560, first: %#x\n", miss, missPCs)
	instrs, cycles := s.Run(g, 40000)
	c := s.Counters()
	l2 := s.VCore().L2().Stats()
	l1i := s.VCore().Slice(0).L1I.Stats()
	fmt.Printf("ipc=%.3f instrs=%d cycles=%d\n", float64(instrs)/float64(cycles), instrs, cycles)
	fmt.Printf("counters: %+v\n", c)
	fmt.Printf("L2: %+v\nL1I(0): %+v\n", l2, l1i)
	for i := 1; i < 4; i++ {
		fmt.Printf("L1I(%d): %+v\n", i, s.VCore().Slice(i).L1I.Stats())
	}
}
