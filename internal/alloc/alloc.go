// Package alloc defines the resource-allocator interface the CASH
// evaluation compares (§II-B, §VI), and implements the baselines:
// race-to-idle, the convex-optimization controller, the per-phase
// oracle policy, and the coarse-grain (big.LITTLE-style) restriction.
// The CASH runtime itself lives in package cashrt and implements the
// same interface.
package alloc

import (
	"fmt"

	"cash/internal/vcore"
)

// Observation reports what happened during one executed step: the
// configuration the virtual core was in, how long it stayed there, the
// QoS (IPC) it delivered, and whether the step was idle time.
type Observation struct {
	Config vcore.Config
	Cycles int64
	// Instrs is the number of instructions committed during the step.
	Instrs int64
	// QoS is Instrs/Cycles (0 for idle steps).
	QoS float64
	// TailQoS is the serving engine's tail-latency signal: latency
	// budget over the quantum's p99 request latency (pending-age
	// floored), normalized so 1.0 means the tail exactly meets its
	// target and values below 1 mean the tail is burning SLO. Zero
	// when no tail signal exists (batch runs, idle steps).
	TailQoS float64
	// Idle marks time spent parked (not executing the application).
	Idle bool
	// L2Changed marks a step that began with an L2 reconfiguration:
	// the cache was flushed, so the step's QoS reflects cold-start
	// behaviour rather than the configuration's steady state.
	L2Changed bool
	// Probe marks a measurement step run in a quantum's idle tail; it
	// informs learning but is not the quantum's "real" tenancy.
	Probe bool
	// Degraded marks a step that ran below the configuration the
	// allocator asked for: the fabric denied an expansion (no healthy
	// free tiles) or a fault forced a mid-quantum shrink. Config holds
	// what actually ran — the capacity currently available.
	Degraded bool
	// Phase is the workload phase index active when the step ended.
	// Only the oracle policy may consult it; adaptive policies must
	// infer phases from QoS feedback alone.
	Phase int
}

// Step is one directive in a plan: occupy Config for up to MaxCycles.
// If TargetInstrs > 0, the step also ends once that many instructions
// have committed (how race-to-idle races through its quantum's work).
// Idle steps pause the application; per the paper's optimistic
// assumption for race-to-idle (§II-B), idle time is not billed.
type Step struct {
	Config       vcore.Config
	MaxCycles    int64
	TargetInstrs int64
	Idle         bool
	// Probe marks an idle-tail measurement step (see Observation.Probe).
	Probe bool
}

// Plan is the allocator's directive for the next control quantum.
type Plan struct {
	Steps []Step
}

// Allocator is a resource-allocation policy. Once per control quantum
// the engine reports the previous quantum's observations and asks for
// the next plan.
type Allocator interface {
	// Name identifies the policy in reports ("CASH", "RaceToIdle", ...).
	Name() string
	// Decide consumes the previous quantum's observations (nil on the
	// first call) and returns the plan for the next quantum of tau
	// cycles.
	Decide(prev []Observation, tau int64) Plan
}

// Static is the trivial allocator: one fixed configuration, never
// idle. It is the building block for the fine-grain/coarse-grain race
// baselines and a useful experimental control.
type Static struct {
	Cfg vcore.Config
}

// Name implements Allocator.
func (s Static) Name() string { return fmt.Sprintf("Static(%s)", s.Cfg) }

// Decide implements Allocator.
func (s Static) Decide(_ []Observation, tau int64) Plan {
	return Plan{Steps: []Step{{Config: s.Cfg, MaxCycles: tau}}}
}
