package alloc

import "cash/internal/vcore"

// RaceToIdle is the paper's race-to-idle baseline (§II-B, §VI-C): it
// has prior knowledge of the lowest-cost configuration that meets the
// QoS requirement in the application's worst-case phase, allocates that
// configuration always, races through each quantum's work, and idles
// once the quantum's QoS obligation is met. Under the paper's
// optimistic assumptions (idling is instantaneous and free) it never
// violates QoS, but it pays worst-case cost in every phase.
type RaceToIdle struct {
	// WorstCase is the precomputed cheapest configuration that meets
	// the QoS target in the worst-case phase (from the oracle).
	WorstCase vcore.Config
	// TargetQoS is the required IPC floor.
	TargetQoS float64
	// Margin is the fractional overshoot raced beyond the obligation,
	// to cover measurement boundary effects.
	Margin float64
}

// Name implements Allocator.
func (r RaceToIdle) Name() string { return "RaceToIdle" }

// Decide implements Allocator: race the quantum's instruction
// obligation on the worst-case configuration, then idle.
func (r RaceToIdle) Decide(_ []Observation, tau int64) Plan {
	margin := r.Margin
	if margin <= 0 {
		margin = 0.02
	}
	obligation := int64(float64(tau) * r.TargetQoS * (1 + margin))
	return Plan{Steps: []Step{
		{Config: r.WorstCase, MaxCycles: tau, TargetInstrs: obligation},
		{Config: r.WorstCase, MaxCycles: tau, Idle: true},
	}}
}

// OraclePolicy is the omniscient per-phase allocator used to draw the
// "Optimal" lines (§V-C): for each phase it selects the precomputed
// cheapest configuration that meets the QoS target in that phase, and
// races/idles within the phase only when even that configuration
// overshoots. It consults Observation.Phase, which adaptive policies
// may not do.
type OraclePolicy struct {
	// PerPhase[i] is the cheapest feasible configuration for phase i.
	PerPhase []vcore.Config
	// TargetQoS is the required IPC floor.
	TargetQoS float64
	// PhaseQoS[i] is the oracle-measured IPC of PerPhase[i] in phase i;
	// used to decide how much of the quantum the configuration must run.
	PhaseQoS []float64

	phase int
}

// Name implements Allocator.
func (o *OraclePolicy) Name() string { return "Optimal" }

// Decide implements Allocator: race the quantum's instruction
// obligation on the phase's most cost-efficient feasible configuration,
// then idle — the same race/idle discipline as RaceToIdle, but with the
// per-phase optimal configuration instead of the global worst case.
func (o *OraclePolicy) Decide(prev []Observation, tau int64) Plan {
	if len(prev) > 0 {
		o.phase = prev[len(prev)-1].Phase
	}
	i := o.phase
	if i >= len(o.PerPhase) {
		i = len(o.PerPhase) - 1
	}
	cfg := o.PerPhase[i]
	obligation := int64(float64(tau) * o.TargetQoS * 1.02)
	return Plan{Steps: []Step{
		{Config: cfg, MaxCycles: tau, TargetInstrs: obligation},
		{Config: cfg, MaxCycles: tau, Idle: true},
	}}
}
