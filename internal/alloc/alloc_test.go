package alloc

import (
	"testing"

	"cash/internal/vcore"
)

func TestStatic(t *testing.T) {
	cfg := vcore.Config{Slices: 3, L2KB: 512}
	s := Static{Cfg: cfg}
	if s.Name() != "Static(3s/512KB)" {
		t.Errorf("Name = %q", s.Name())
	}
	p := s.Decide(nil, 100_000)
	if len(p.Steps) != 1 || p.Steps[0].Config != cfg || p.Steps[0].MaxCycles != 100_000 {
		t.Errorf("plan = %+v", p)
	}
	if p.Steps[0].Idle {
		t.Error("static never idles")
	}
}

func TestRaceToIdlePlan(t *testing.T) {
	r := RaceToIdle{WorstCase: vcore.Max(), TargetQoS: 0.4}
	p := r.Decide(nil, 100_000)
	if len(p.Steps) != 2 {
		t.Fatalf("race-to-idle plans race+idle, got %d steps", len(p.Steps))
	}
	race, idle := p.Steps[0], p.Steps[1]
	if race.Config != vcore.Max() || race.Idle {
		t.Errorf("race step wrong: %+v", race)
	}
	wantObligation := int64(100_000 * 0.4 * 1.02)
	if race.TargetInstrs != wantObligation {
		t.Errorf("obligation = %d, want %d", race.TargetInstrs, wantObligation)
	}
	if !idle.Idle {
		t.Error("second step must idle")
	}
	if r.Name() != "RaceToIdle" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestRaceToIdleMargin(t *testing.T) {
	r := RaceToIdle{WorstCase: vcore.Max(), TargetQoS: 1, Margin: 0.1}
	p := r.Decide(nil, 1000)
	if p.Steps[0].TargetInstrs != 1100 {
		t.Errorf("custom margin obligation = %d, want 1100", p.Steps[0].TargetInstrs)
	}
}

func TestOraclePolicyFollowsPhase(t *testing.T) {
	cfgs := []vcore.Config{
		{Slices: 1, L2KB: 64},
		{Slices: 8, L2KB: 8192},
	}
	o := &OraclePolicy{PerPhase: cfgs, PhaseQoS: []float64{0.5, 0.3}, TargetQoS: 0.25}
	p := o.Decide(nil, 100_000)
	if p.Steps[0].Config != cfgs[0] {
		t.Errorf("initial phase uses %s, want %s", p.Steps[0].Config, cfgs[0])
	}
	p = o.Decide([]Observation{{Phase: 1}}, 100_000)
	if p.Steps[0].Config != cfgs[1] {
		t.Errorf("phase 1 uses %s, want %s", p.Steps[0].Config, cfgs[1])
	}
	// Out-of-range phases clamp to the last entry.
	p = o.Decide([]Observation{{Phase: 99}}, 100_000)
	if p.Steps[0].Config != cfgs[1] {
		t.Error("phase overflow must clamp")
	}
	if o.Name() != "Optimal" {
		t.Errorf("Name = %q", o.Name())
	}
}

func TestOraclePolicyRaces(t *testing.T) {
	o := &OraclePolicy{
		PerPhase:  []vcore.Config{{Slices: 2, L2KB: 128}},
		PhaseQoS:  []float64{0.8},
		TargetQoS: 0.4,
	}
	p := o.Decide(nil, 100_000)
	if len(p.Steps) != 2 || !p.Steps[1].Idle {
		t.Fatalf("oracle policy must race+idle: %+v", p.Steps)
	}
	if p.Steps[0].TargetInstrs <= 0 {
		t.Error("race step needs an instruction obligation")
	}
}
